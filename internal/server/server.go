// Package server exposes the hitl library over a JSON HTTP API, so that
// non-Go tooling (dashboards, CI checks, design linters) can submit system
// specs for checklist analysis, run the mitigation process, ask for design
// patterns, and regenerate experiments.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/healthz          liveness probe
//	GET  /v1/metrics          Prometheus text-format runtime telemetry
//	GET  /v1/components       the Table 1 component registry
//	GET  /v1/patterns         the §5 design-pattern catalog (metadata)
//	GET  /v1/experiments      the experiment registry
//	GET  /v1/scenarios        the scenario registry with parameter schemas
//	POST /v1/analyze          SystemSpec -> findings + reliability
//	POST /v1/process          SystemSpec -> Figure 2 process result
//	POST /v1/recommend        SystemSpec -> gain-ranked pattern advice
//	POST /v1/experiments/run  {id, seed, n} -> metrics + rendered text;
//	     ?trace_sample=K inlines K sampled per-subject stage traces and
//	     ?spans=1 inlines the request's telemetry span tree
//	POST /v1/scenarios/run    declarative scenario spec -> points + metrics;
//	     validation failures are 400 with the offending field's JSON path,
//	     ?trace_sample / ?spans / ?faults work as on /v1/experiments/run,
//	     and ?report=1 inlines a RunReport (phase wall times, stage
//	     attribution, fault stats, engine metrics delta)
//	POST /v1/jobs             scenario spec -> async job keyed by the spec's
//	     canonical digest; identical concurrent submissions coalesce onto
//	     one computation (singleflight); ?faults= (gated) runs a fault
//	     variant under its own derived job ID
//	GET  /v1/jobs/{id}         job status and sweep progress
//	GET  /v1/jobs/{id}/result  completed result; strong ETag, If-None-Match
//	     answers 304, and with Config.StoreDir results survive restarts
//	GET  /v1/jobs/{id}/report  the job's persisted RunReport (canonicalized:
//	     bit-identical at any worker count); same ETag/304 discipline
//	GET  /v1/jobs/{id}/stream  chunked JSONL of points and sampled traces
//	GET  /v1/debug/events      the in-process flight recorder ring (JSON),
//	     filterable with ?kind=a,b and pageable with ?since=<seq>
//
// Experiment and process runs are deterministic in their inputs, so their
// 200 responses are kept in a bounded LRU result cache (Config.CacheSize;
// disabled with a negative size). Responses to cacheable requests carry an
// X-Cache: hit|miss header, requests that inline per-request telemetry
// (?trace_sample, ?spans=1) bypass the cache, and /v1/metrics exposes
// hitl_server_cache_{hits,misses,evictions}.
//
// Requests are size-limited and run with a per-request subject-count cap so
// a single call cannot monopolize the process. Every response carries an
// X-Request-ID header (honoring a client-supplied one) that also appears in
// the structured access log. Handlers run under the request context:
// a client that disconnects or times out cancels its in-flight Monte Carlo
// work, reported as HTTP 499 in logs and metrics.
//
// Overload protection: compute endpoints (the POST handlers) pass through
// bounded admission — Config.MaxInFlight concurrent requests, at most
// Config.MaxQueue waiters, each waiting at most Config.QueueTimeout.
// Requests beyond those bounds are shed with 429 + Retry-After instead of
// queuing unboundedly. Admitted requests run under a per-request compute
// deadline (Config.ComputeTimeout, 503 on expiry). Any shed latches
// degraded mode for Config.DegradeWindow: experiment subject counts are
// clamped to Config.DegradedMaxSubjects and responses carry X-Degraded.
// Degraded responses never enter the result cache. /v1/metrics exposes
// hitl_server_shed_total, queue_depth, degraded, and compute-deadline
// counters; /v1/healthz reports 503 draining after SetDraining so load
// balancers stop routing before graceful shutdown's drain deadline.
//
// When Config.AllowFaults is set, /v1/experiments/run accepts a
// ?faults=<spec> parameter (internal/faults grammar) that perturbs the run
// deterministically — for chaos drills against a real server. Faulted
// responses carry X-Faults and also bypass the cache.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hitl/internal/cluster"
	"hitl/internal/core"
	"hitl/internal/experiments"
	"hitl/internal/faults"
	"hitl/internal/jobs"
	"hitl/internal/patterns"
	"hitl/internal/sim"
	"hitl/internal/store"
	"hitl/internal/telemetry"
)

// statusClientClosedRequest is the non-standard (nginx-convention) status
// for "the client went away before we finished". It keeps abandoned work
// distinguishable from real failures in logs and metrics.
const statusClientClosedRequest = 499

// defaultProcessPasses mirrors core.ProcessOptions' documented default so
// the handler can report the effective pass count when none was requested.
const defaultProcessPasses = 2

// Config bounds the server's work.
type Config struct {
	// MaxBodyBytes caps request bodies; default 1 MiB.
	MaxBodyBytes int64
	// MaxSubjects caps the per-arm subject count for experiment runs;
	// default 20000.
	MaxSubjects int
	// MaxProcessPasses caps the Figure 2 iteration count; default 4.
	MaxProcessPasses int
	// MaxTraceSample caps the ?trace_sample=K reservoir size on experiment
	// runs, bounding the inline trace payload; default 50.
	MaxTraceSample int
	// CacheSize bounds the deterministic result cache (entries). Repeated
	// /v1/experiments/run and /v1/process requests with identical inputs
	// are answered from memory; responses carry an X-Cache hit/miss
	// header. 0 means the default (128); negative disables caching.
	CacheSize int
	// CacheMaxBytes bounds the total bytes of cached response bodies, so
	// one multi-megabyte sweep body cannot masquerade as a single cheap
	// entry. 0 means the default (64 MiB); negative disables the byte
	// bound (entry count only).
	CacheMaxBytes int64
	// MaxInFlight caps concurrently executing compute (POST) requests.
	// 0 means the default (2x GOMAXPROCS, at least 4); negative disables
	// admission control entirely.
	MaxInFlight int
	// MaxQueue caps compute requests waiting for an in-flight slot. 0 means
	// the default (4x MaxInFlight); negative means no queue — saturated
	// slots shed immediately.
	MaxQueue int
	// QueueTimeout bounds how long a compute request may wait for a slot
	// before being shed with 429; default 2s.
	QueueTimeout time.Duration
	// ComputeTimeout is the per-request compute deadline for admitted
	// requests; expiry reports 503. 0 means the default (60s); negative
	// disables the deadline.
	ComputeTimeout time.Duration
	// DegradeWindow is how long degraded mode persists after the most
	// recent shed; default 10s.
	DegradeWindow time.Duration
	// DegradedMaxSubjects clamps experiment subject counts while degraded.
	// 0 means the default (MaxSubjects/8, at least 1).
	DegradedMaxSubjects int
	// AllowFaults enables the ?faults= query parameter on experiment runs.
	// Off by default: fault injection is an operator drill, not a public
	// API surface.
	AllowFaults bool
	// StoreDir roots the persistent content-addressed result store backing
	// the async job API. Empty means memory-only: jobs work, but completed
	// results do not survive a restart.
	StoreDir string
	// JobWorkers caps concurrently executing jobs; 0 means the manager
	// default (2).
	JobWorkers int
	// JobTimeout bounds one job's compute; 0 means the manager default
	// (10 minutes), negative disables.
	JobTimeout time.Duration
	// JobTraceSample is how many subject traces each job samples into its
	// stream and stored result; 0 means the manager default (8), negative
	// disables.
	JobTraceSample int
	// MaxJobs bounds the in-memory job table; 0 means the manager default
	// (256). Overflow of live (pending/running) jobs is shed with 429.
	MaxJobs int
	// Cluster configures the coordinator role. When Cluster.Workers is
	// non-empty the server builds a cluster.Coordinator over that pool,
	// starts its health prober, and mounts POST /v1/cluster/run; without
	// workers the endpoint answers 503. Every server is always a shard
	// worker (POST /v1/cluster/shard), coordinator or not.
	Cluster cluster.Config
	// Logger receives structured access logs; default logs to stderr.
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSubjects == 0 {
		c.MaxSubjects = 20000
	}
	if c.MaxProcessPasses == 0 {
		c.MaxProcessPasses = 4
	}
	if c.MaxTraceSample == 0 {
		c.MaxTraceSample = 50
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
		if c.MaxInFlight < 4 {
			c.MaxInFlight = 4
		}
	}
	if c.MaxQueue == 0 && c.MaxInFlight > 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.ComputeTimeout == 0 {
		c.ComputeTimeout = 60 * time.Second
	}
	if c.DegradeWindow == 0 {
		c.DegradeWindow = 10 * time.Second
	}
	if c.DegradedMaxSubjects == 0 {
		c.DegradedMaxSubjects = c.MaxSubjects / 8
		if c.DegradedMaxSubjects < 1 {
			c.DegradedMaxSubjects = 1
		}
	}
}

// Server is the HTTP handler set.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	metrics    *metricsRegistry
	cache      *resultCache // nil when disabled
	overload   *overload
	store      *store.Store // nil when StoreDir is empty or unopenable
	jobs       *jobs.Manager
	coord      *cluster.Coordinator // nil unless Cluster.Workers configured
	retryAfter string               // Retry-After seconds advertised on shed
	draining   atomic.Bool
	log        *slog.Logger
}

// New creates a server with the config.
func New(cfg Config) *Server {
	cfg.setDefaults()
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), metrics: newMetricsRegistry(), log: log}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize, cfg.CacheMaxBytes)
	}
	s.overload = newOverload(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueTimeout, cfg.DegradeWindow)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			// A broken store directory degrades to memory-only jobs rather
			// than refusing to serve: the synchronous API is unaffected and
			// the job API still works, just without restart survival.
			log.Warn("result store unavailable; jobs run memory-only",
				slog.String("dir", cfg.StoreDir), slog.String("error", err.Error()))
		} else {
			s.store = st
		}
	}
	s.jobs = jobs.NewManager(jobs.Config{
		Store:       s.store,
		Workers:     cfg.JobWorkers,
		Timeout:     cfg.JobTimeout,
		TraceSample: cfg.JobTraceSample,
		MaxJobs:     cfg.MaxJobs,
	})
	// A shed client retrying after the queue deadline has a fresh full
	// wait ahead of it; round the hint up to whole seconds, at least 1.
	retrySecs := int64((cfg.QueueTimeout + time.Second - 1) / time.Second)
	if retrySecs < 1 {
		retrySecs = 1
	}
	s.retryAfter = strconv.FormatInt(retrySecs, 10)
	s.route("/v1/healthz", s.handleHealthz, http.MethodGet)
	s.route("/v1/metrics", s.handleMetrics, http.MethodGet)
	s.route("/v1/components", s.handleComponents, http.MethodGet)
	s.route("/v1/patterns", s.handlePatterns, http.MethodGet)
	s.route("/v1/experiments", s.handleExperimentList, http.MethodGet)
	s.route("/v1/experiments/run", s.limited(s.handleExperimentRun), http.MethodPost)
	s.route("/v1/scenarios", s.handleScenarioList, http.MethodGet)
	s.route("/v1/populations", s.handlePopulationList, http.MethodGet)
	s.route("/v1/scenarios/run", s.limited(s.handleScenarioRun), http.MethodPost)
	s.route("/v1/analyze", s.limited(s.handleAnalyze), http.MethodPost)
	s.route("/v1/process", s.limited(s.handleProcess), http.MethodPost)
	s.route("/v1/recommend", s.limited(s.handleRecommend), http.MethodPost)
	s.route("/v1/jobs", s.handleJobSubmit, http.MethodPost)
	s.route("/v1/jobs/{id}", s.handleJobStatus, http.MethodGet)
	s.route("/v1/jobs/{id}/result", s.handleJobResult, http.MethodGet)
	s.route("/v1/jobs/{id}/report", s.handleJobReport, http.MethodGet)
	s.route("/v1/jobs/{id}/stream", s.handleJobStream, http.MethodGet)
	s.route("/v1/debug/events", s.handleDebugEvents, http.MethodGet)
	s.route("/v1/cluster/shard", s.limited(s.handleClusterShard), http.MethodPost)
	s.route("/v1/cluster/run", s.limited(s.handleClusterRun), http.MethodPost)
	s.route("/v1/cluster/nodes", s.handleClusterNodes, http.MethodGet)
	if len(cfg.Cluster.Workers) > 0 {
		coord, err := cluster.New(cfg.Cluster)
		if err != nil {
			// A bad pool config degrades to worker-only rather than
			// refusing to serve: every other endpoint is unaffected.
			log.Warn("cluster coordinator disabled", slog.String("error", err.Error()))
		} else {
			s.coord = coord
			coord.Start()
		}
	}
	return s
}

// Close releases background resources — today the cluster coordinator's
// health prober. The HTTP handler itself holds no connections.
func (s *Server) Close() {
	if s.coord != nil {
		s.coord.Close()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips /v1/healthz to 503 "draining" so load balancers stop
// routing new work here, and stops accepting new job submissions. Call it
// when graceful shutdown begins, before the drain deadline starts
// counting; in-flight and queued requests — and already-accepted jobs —
// still finish normally.
func (s *Server) SetDraining() {
	s.draining.Store(true)
	s.jobs.Drain()
}

// WaitJobs blocks until every accepted job has reached a terminal state,
// or ctx expires. Pair with SetDraining during graceful shutdown so a
// persisted store holds every result the API acknowledged with 202.
func (s *Server) WaitJobs(ctx context.Context) error { return s.jobs.Wait(ctx) }

// computeDeadlineKey marks request contexts that run under the
// per-request compute deadline, so handlers can tell deadline expiry (503)
// apart from a client that went away (499).
const computeDeadlineKey ctxKey = 1

// computeDeadlineExpired reports whether ctx carries the compute deadline
// and that deadline has passed.
func computeDeadlineExpired(ctx context.Context) bool {
	return ctx.Value(computeDeadlineKey) != nil && errors.Is(ctx.Err(), context.DeadlineExceeded)
}

// limited wraps a compute handler with admission control and the
// per-request compute deadline. Shed requests get 429 + Retry-After and
// never reach the handler; clients that disconnect while queued get 499.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.overload.acquire(r.Context())
		switch {
		case errors.Is(err, errShed):
			telemetry.Flight.Record(telemetry.EventRequestShed, r.Method+" "+r.URL.Path)
			w.Header().Set("Retry-After", s.retryAfter)
			writeErr(w, http.StatusTooManyRequests, err)
			return
		case err != nil:
			writeErr(w, statusClientClosedRequest, err)
			return
		}
		defer release()
		telemetry.Flight.Record(telemetry.EventRequestAdmitted, r.Method+" "+r.URL.Path)
		if s.cfg.ComputeTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ComputeTimeout)
			defer cancel()
			r = r.WithContext(context.WithValue(ctx, computeDeadlineKey, true))
		}
		h(w, r)
	}
}

// errorBody is the error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response already committed; nothing useful to do on error
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeSpec reads a SystemSpec request body. Method enforcement happens
// in the route middleware.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (core.SystemSpec, bool) {
	var spec core.SystemSpec
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, decodeStatus(err), fmt.Errorf("decoding spec: %w", err))
		return spec, false
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return spec, false
	}
	return spec, true
}

// faultsFromQuery resolves the ?faults= query parameter for a compute
// handler: it enforces the Config.AllowFaults gate (403), rejects
// malformed specs (400), and advertises active injection via X-Faults.
// ok=false means a response has already been written.
func (s *Server) faultsFromQuery(w http.ResponseWriter, r *http.Request) (*faults.Set, bool) {
	q := r.URL.Query().Get("faults")
	if q == "" {
		return nil, true
	}
	if !s.cfg.AllowFaults {
		writeErr(w, http.StatusForbidden,
			errors.New("fault injection is disabled on this server (Config.AllowFaults)"))
		return nil, false
	}
	set, err := faults.Parse(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return nil, false
	}
	if set.Empty() {
		return nil, true
	}
	w.Header().Set("X-Faults", set.String())
	return set, true
}

// decodeStatus maps a request-body decode error to its HTTP status: an
// http.MaxBytesError means the body blew past MaxBodyBytes (413, the
// client must shrink the request), anything else is a malformed body
// (400).
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// handleHealthz answers liveness probes. The status code alone decides
// routing (200 take traffic, 503 stop routing); the JSON body lets a
// cluster coordinator distinguish a draining worker from a dead one in
// the same request, and carries build identity for fleet audits.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := cluster.Health{
		Status:        cluster.StatusOK,
		UptimeSeconds: telemetry.Uptime().Seconds(),
		GoVersion:     runtime.Version(),
		Revision:      telemetry.BuildRevision(),
	}
	if s.draining.Load() {
		h.Status = cluster.StatusDraining
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.writePrometheus(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "metrics write failed",
			slog.String("error", err.Error()))
		return
	}
	// Result-cache counters follow the HTTP metrics.
	if s.cache != nil {
		if err := s.cache.writeMetrics(w); err != nil {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "cache metrics write failed",
				slog.String("error", err.Error()))
			return
		}
	}
	// Overload-protection counters: shed, queue depth, degraded mode,
	// compute-deadline expirations.
	if err := s.overload.writeMetrics(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "overload metrics write failed",
			slog.String("error", err.Error()))
		return
	}
	// Async-job and persistent-store counters.
	if err := s.jobs.WriteMetrics(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "jobs metrics write failed",
			slog.String("error", err.Error()))
		return
	}
	if s.store != nil {
		if err := s.store.WriteMetrics(w); err != nil {
			s.log.LogAttrs(r.Context(), slog.LevelWarn, "store metrics write failed",
				slog.String("error", err.Error()))
			return
		}
	}
	// Engine telemetry (Monte Carlo counters, stage failures, run-duration
	// histograms, span summaries) follows the HTTP metrics so one scrape
	// covers the whole process.
	if err := telemetry.WriteMetrics(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "engine metrics write failed",
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleComponents(w http.ResponseWriter, r *http.Request) {
	type componentDTO struct {
		ID        int      `json:"id"`
		Group     string   `json:"group"`
		Name      string   `json:"name"`
		Questions []string `json:"questions"`
		Factors   []string `json:"factors"`
	}
	var out []componentDTO
	for _, c := range core.Components() {
		out = append(out, componentDTO{
			ID: int(c.ID), Group: c.Group, Name: c.Name,
			Questions: c.Questions, Factors: c.Factors,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	type patternDTO struct {
		Name      string   `json:"name"`
		Category  string   `json:"category"`
		Intent    string   `json:"intent"`
		Addresses []string `json:"addresses"`
		Reference string   `json:"reference"`
	}
	var out []patternDTO
	for _, p := range patterns.Catalog() {
		dto := patternDTO{
			Name: p.Name, Category: p.Category.String(),
			Intent: p.Intent, Reference: p.Reference,
		}
		for _, c := range p.Addresses {
			dto.Addresses = append(dto.Addresses, c.String())
		}
		out = append(out, dto)
	}
	writeJSON(w, http.StatusOK, out)
}

// findingDTO serializes a checklist finding with names, not enum ints.
type findingDTO struct {
	Task           string  `json:"task"`
	Component      string  `json:"component"`
	Severity       string  `json:"severity"`
	Issue          string  `json:"issue"`
	Recommendation string  `json:"recommendation"`
	Estimate       float64 `json:"estimate,omitempty"`
}

func toFindingDTOs(fs []core.Finding) []findingDTO {
	out := make([]findingDTO, len(fs))
	for i, f := range fs {
		out[i] = findingDTO{
			Task: f.TaskID, Component: f.Component.String(),
			Severity: f.Severity.String(), Issue: f.Issue,
			Recommendation: f.Recommendation, Estimate: f.Estimate,
		}
	}
	return out
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	rep, err := core.Analyze(spec)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"system":      rep.System,
		"findings":    toFindingDTOs(rep.Findings),
		"reliability": rep.Reliability,
		"maxSeverity": rep.MaxSeverity().String(),
	})
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	// strconv.Atoi rejects trailing garbage ("3junk") that Sscanf used to
	// accept silently.
	effective := defaultProcessPasses
	if p := r.URL.Query().Get("passes"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid passes %q", p))
			return
		}
		effective = v
	}
	if effective > s.cfg.MaxProcessPasses {
		effective = s.cfg.MaxProcessPasses
	}
	// The process run is deterministic in (spec, passes): answer repeats
	// from the result cache. Keying happens after clamping so a request
	// for passes=100 shares the entry with the effective cap. An
	// unkeyable spec (ok=false) skips the cache entirely rather than
	// sharing a sentinel entry with every other unkeyable spec.
	cacheKey, keyable := processCacheKey(spec, effective)
	if !keyable {
		cacheKey = ""
	}
	if s.serveCached(w, cacheKey) {
		return
	}
	res, err := core.RunProcess(spec, core.ProcessOptions{MaxPasses: effective})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	type passDTO struct {
		Number      int                       `json:"number"`
		Identified  []string                  `json:"identified"`
		Automation  []core.AutomationDecision `json:"automation"`
		Findings    []findingDTO              `json:"findings,omitempty"`
		Mitigations []map[string]any          `json:"mitigations,omitempty"`
	}
	var pd []passDTO
	for _, p := range res.Passes {
		d := passDTO{Number: p.Number, Identified: p.Identified, Automation: p.Automation}
		if p.Analysis != nil {
			d.Findings = toFindingDTOs(p.Analysis.Findings)
		}
		for _, m := range p.Mitigations {
			d.Mitigations = append(d.Mitigations, map[string]any{
				"task": m.TaskID, "component": m.Component.String(),
				"action": m.Action, "before": m.Before, "after": m.After,
			})
		}
		pd = append(pd, d)
	}
	s.writeCacheableJSON(w, cacheKey, "", map[string]any{
		"passes":           pd,
		"effectivePasses":  effective,
		"finalReliability": res.FinalReliability,
		"automated":        res.Automated,
	})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	rep, err := core.Analyze(spec)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	recs, err := patterns.Recommend(spec, rep, core.SeverityMedium)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	type recDTO struct {
		Pattern string  `json:"pattern"`
		Task    string  `json:"task"`
		Intent  string  `json:"intent"`
		Before  float64 `json:"before"`
		After   float64 `json:"after"`
		Delta   float64 `json:"delta"`
	}
	out := make([]recDTO, len(recs))
	for i, rc := range recs {
		out[i] = recDTO{
			Pattern: rc.Pattern.Name, Task: rc.TaskID, Intent: rc.Pattern.Intent,
			Before: rc.Before, After: rc.After, Delta: rc.Delta(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	type expDTO struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	var out []expDTO
	for _, e := range experiments.Registry() {
		out = append(out, expDTO{ID: e.ID, Name: e.Name})
	}
	writeJSON(w, http.StatusOK, out)
}

// experimentRunRequest is the POST /v1/experiments/run body.
type experimentRunRequest struct {
	ID   string `json:"id"`
	Seed int64  `json:"seed"`
	N    int    `json:"n"`
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	var req experimentRunRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, decodeStatus(err), err)
		return
	}
	if req.ID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing experiment id"))
		return
	}
	if req.N < 0 || req.N > s.cfg.MaxSubjects {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("n=%d out of [0, %d]", req.N, s.cfg.MaxSubjects))
		return
	}
	if req.Seed == 0 {
		req.Seed = 20080124
	}
	// ?faults=<spec> (internal/faults grammar) perturbs the run
	// deterministically — a chaos drill, gated behind Config.AllowFaults.
	faultSet, ok := s.faultsFromQuery(w, r)
	if !ok {
		return
	}
	// Under sustained overload the server trades fidelity for liveness:
	// subject counts are clamped until the degraded window clears. n=0
	// (experiment default, often the largest run) is clamped too.
	degraded := s.overload.degraded()
	if degraded {
		if req.N == 0 || req.N > s.cfg.DegradedMaxSubjects {
			req.N = s.cfg.DegradedMaxSubjects
		}
		w.Header().Set("X-Degraded", "subjects-clamped")
		s.overload.degradedRuns.Add(1)
	}
	// ?trace_sample=K samples up to K per-subject stage traces into the
	// response (capped by MaxTraceSample); ?spans=1 returns the request's
	// span tree. Span durations always feed /v1/metrics.
	traceSample := 0
	if q := r.URL.Query().Get("trace_sample"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid trace_sample %q", q))
			return
		}
		traceSample = v
		if traceSample > s.cfg.MaxTraceSample {
			traceSample = s.cfg.MaxTraceSample
		}
	}
	wantSpans := r.URL.Query().Get("spans") == "1"

	// Runs are deterministic in (id, seed, n), so identical requests can be
	// answered from the result cache — but only full-fidelity ones: no
	// per-request telemetry (?trace_sample / ?spans, always produced
	// fresh), no injected faults, and not while degraded (a clamped run
	// must not be replayed as the real answer once the server recovers).
	cacheKey := ""
	if traceSample == 0 && !wantSpans && faultSet == nil && !degraded {
		cacheKey = experimentCacheKey(req.ID, req.Seed, req.N)
		if s.serveCached(w, cacheKey) {
			return
		}
	}

	// The request context cancels the Monte Carlo workers when the client
	// disconnects or the server drains, so abandoned runs stop burning CPU.
	ctx := r.Context()
	if faultSet != nil {
		ctx = sim.WithInjector(ctx, faultSet)
	}
	var rec *telemetry.Recorder
	if traceSample > 0 {
		rec = telemetry.NewRecorder(traceSample, req.Seed)
		ctx = telemetry.WithRecorder(ctx, rec)
	}
	tracer := telemetry.NewTracer(nil)
	ctx = telemetry.WithTracer(ctx, tracer)
	out, err := experiments.Run(ctx, req.ID, experiments.Config{Seed: req.Seed, N: req.N})
	if err != nil {
		switch {
		case errors.Is(err, experiments.ErrUnknown):
			writeErr(w, http.StatusNotFound, err)
		case computeDeadlineExpired(ctx):
			// The server's own compute deadline expired — a capacity
			// signal (503), not a client disconnect (499).
			s.overload.deadlineExpired.Add(1)
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Errorf("compute deadline (%s) exceeded: %w", s.cfg.ComputeTimeout, err))
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeErr(w, statusClientClosedRequest, err)
		default:
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	var text strings.Builder
	if err := out.WriteText(&text); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	// seed and n echo the parameters the run actually executed with — n in
	// particular may have been clamped by degraded mode (0 still means the
	// experiment's own default).
	resp := map[string]any{
		"id":         out.ID,
		"seed":       req.Seed,
		"n":          req.N,
		"title":      out.Title,
		"paperShape": out.PaperShape,
		"metrics":    out.Metrics,
		"notes":      out.Notes,
		"text":       text.String(),
	}
	if rec != nil {
		resp["trace"] = rec.Traces()
	}
	if wantSpans {
		resp["spans"] = tracer.Spans()
	}
	if cacheKey != "" {
		s.writeCacheableJSON(w, cacheKey, "", resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
