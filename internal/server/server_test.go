package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"hitl/internal/cluster"
	"hitl/internal/comms"
	"hitl/internal/core"
	"hitl/internal/gems"
	"hitl/internal/population"
	"hitl/internal/stimuli"
)

// quietConfig silences access logs in tests.
func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(quietConfig()))
	t.Cleanup(ts.Close)
	return ts
}

func exampleSpec() core.SystemSpec {
	return core.SystemSpec{
		Name: "browser-anti-phishing",
		Tasks: []core.HumanTask{{
			ID:                    "heed-phishing-warning",
			Description:           "heed the warning and leave the site",
			Communication:         comms.IEPassiveWarning(),
			Environment:           stimuli.Busy(),
			Task:                  gems.LeaveSuspiciousSite(),
			Population:            population.GeneralPublic(),
			AutomationFeasibility: 0.8,
			AutomationQuality:     0.9,
		}},
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body cluster.Health
	decodeBody(t, resp, &body)
	if resp.StatusCode != http.StatusOK || body.Status != cluster.StatusOK {
		t.Errorf("healthz: %d %+v", resp.StatusCode, body)
	}
	// The body carries enough to tell draining from dead and to audit the
	// fleet's build: uptime and toolchain identity.
	if body.UptimeSeconds <= 0 {
		t.Errorf("healthz uptime_seconds = %v, want > 0", body.UptimeSeconds)
	}
	if body.GoVersion != runtime.Version() {
		t.Errorf("healthz go_version = %q, want %q", body.GoVersion, runtime.Version())
	}
}

func TestComponentsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/components")
	if err != nil {
		t.Fatal(err)
	}
	var comps []map[string]any
	decodeBody(t, resp, &comps)
	if len(comps) != 15 {
		t.Errorf("got %d components, want 15", len(comps))
	}
	// POST is rejected.
	resp2 := postJSON(t, ts.URL+"/v1/components", map[string]any{})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST components: %d, want 405", resp2.StatusCode)
	}
	if allow := resp2.Header.Get("Allow"); allow != "GET" {
		t.Errorf("405 Allow header = %q, want GET (RFC 9110 §15.5.6)", allow)
	}
}

func TestPatternsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/patterns")
	if err != nil {
		t.Fatal(err)
	}
	var ps []struct {
		Name      string   `json:"name"`
		Category  string   `json:"category"`
		Addresses []string `json:"addresses"`
	}
	decodeBody(t, resp, &ps)
	if len(ps) < 12 {
		t.Errorf("got %d patterns", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.Category == "" || len(p.Addresses) == 0 {
			t.Errorf("incomplete pattern DTO: %+v", p)
		}
	}
}

func TestPopulationsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/populations")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Dimensions []struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		} `json:"dimensions"`
		Populations []struct {
			Name   string `json:"name"`
			AgeMin int    `json:"age_min"`
			AgeMax int    `json:"age_max"`
			Dims   map[string]struct {
				Mean float64 `json:"mean"`
				SD   float64 `json:"sd"`
			} `json:"dims"`
		} `json:"populations"`
	}
	decodeBody(t, resp, &body)
	if len(body.Dimensions) != int(population.NumCoreDims) {
		t.Errorf("%d dimensions, want %d", len(body.Dimensions), int(population.NumCoreDims))
	}
	for _, d := range body.Dimensions {
		if d.Name == "" || d.Doc == "" {
			t.Errorf("incomplete dimension DTO: %+v", d)
		}
	}
	if len(body.Populations) < 4 {
		t.Fatalf("got %d populations", len(body.Populations))
	}
	for _, p := range body.Populations {
		if p.Name == "" || p.AgeMax <= p.AgeMin {
			t.Errorf("incomplete population DTO: %+v", p)
		}
		if len(p.Dims) < int(population.NumCoreDims) {
			t.Errorf("population %s lists %d dims, want >= %d", p.Name, len(p.Dims), population.NumCoreDims)
		}
		for _, d := range body.Dimensions {
			if _, ok := p.Dims[d.Name]; !ok {
				t.Errorf("population %s missing dimension %s", p.Name, d.Name)
			}
		}
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/analyze", exampleSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	var body struct {
		System   string `json:"system"`
		Findings []struct {
			Component string `json:"component"`
			Severity  string `json:"severity"`
		} `json:"findings"`
		Reliability map[string]float64 `json:"reliability"`
		MaxSeverity string             `json:"maxSeverity"`
	}
	decodeBody(t, resp, &body)
	if body.System != "browser-anti-phishing" {
		t.Errorf("system = %q", body.System)
	}
	if len(body.Findings) == 0 {
		t.Error("no findings for a passive warning")
	}
	if body.Findings[0].Component == "" || body.Findings[0].Severity == "" {
		t.Error("findings must serialize names, not ints")
	}
	if rel, ok := body.Reliability["heed-phishing-warning"]; !ok || rel > 0.3 {
		t.Errorf("reliability = %v", body.Reliability)
	}
}

func TestAnalyzeRejectsBadInput(t *testing.T) {
	ts := newTestServer(t)
	// Not JSON.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", resp.StatusCode)
	}
	// Unknown fields.
	resp, err = http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"Name":"x","Bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
	// Valid JSON, invalid spec.
	spec := exampleSpec()
	spec.Tasks[0].ComplianceCost = 5
	resp = postJSON(t, ts.URL+"/v1/analyze", spec)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid spec: %d, want 422", resp.StatusCode)
	}
	// GET is rejected.
	resp, err = http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET analyze: %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Errorf("405 Allow header = %q, want POST", allow)
	}
	resp.Body.Close()
}

func TestAnalyzeBodyLimit(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxBodyBytes = 64
	ts := httptest.NewServer(New(cfg))
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/v1/analyze", exampleSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp.StatusCode)
	}
}

func TestProcessEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/process?passes=2", exampleSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("process status %d", resp.StatusCode)
	}
	var body struct {
		Passes []struct {
			Number      int              `json:"number"`
			Mitigations []map[string]any `json:"mitigations"`
		} `json:"passes"`
		Automated map[string]int `json:"automated"`
	}
	decodeBody(t, resp, &body)
	if len(body.Passes) == 0 {
		t.Fatal("no passes")
	}
	if len(body.Passes[0].Mitigations) == 0 {
		t.Error("pass 1 should mitigate the passive warning")
	}
	// Invalid passes param.
	resp = postJSON(t, ts.URL+"/v1/process?passes=zero", exampleSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad passes: %d, want 400", resp.StatusCode)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/recommend", exampleSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status %d", resp.StatusCode)
	}
	var recs []struct {
		Pattern string  `json:"pattern"`
		Delta   float64 `json:"delta"`
	}
	decodeBody(t, resp, &recs)
	if len(recs) == 0 {
		t.Fatal("no recommendations for a weak system")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Delta > recs[i-1].Delta+1e-9 {
			t.Fatal("recommendations not sorted by gain")
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID string `json:"id"`
	}
	decodeBody(t, resp, &list)
	if len(list) < 14 {
		t.Errorf("experiment registry has %d entries", len(list))
	}
	// Run a cheap one.
	resp = postJSON(t, ts.URL+"/v1/experiments/run",
		experimentRunRequest{ID: "T1", Seed: 1, N: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run T1: %d", resp.StatusCode)
	}
	var out struct {
		ID      string             `json:"id"`
		Metrics map[string]float64 `json:"metrics"`
		Text    string             `json:"text"`
	}
	decodeBody(t, resp, &out)
	if out.ID != "T1" || out.Metrics["components"] != 15 || !strings.Contains(out.Text, "Attention switch") {
		t.Errorf("unexpected T1 payload: %+v", out.ID)
	}
	// Unknown ID -> 404.
	resp = postJSON(t, ts.URL+"/v1/experiments/run", experimentRunRequest{ID: "E99"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: %d, want 404", resp.StatusCode)
	}
	// Oversized N -> 400.
	resp = postJSON(t, ts.URL+"/v1/experiments/run", experimentRunRequest{ID: "T1", N: 10_000_000})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized n: %d, want 400", resp.StatusCode)
	}
	// Missing ID -> 400.
	resp = postJSON(t, ts.URL+"/v1/experiments/run", experimentRunRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing id: %d, want 400", resp.StatusCode)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	// The wire format must round-trip a full spec without loss.
	spec := exampleSpec()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back core.SystemSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped spec invalid: %v", err)
	}
	a, err := core.EstimateReliability(spec.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.EstimateReliability(back.Tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("reliability differs after round-trip: %v vs %v", a, b)
	}
}

func TestProcessPassesValidation(t *testing.T) {
	ts := newTestServer(t)
	// Trailing garbage must be rejected, not silently truncated the way
	// fmt.Sscanf("%d") used to accept "3junk" as 3.
	for _, bad := range []string{"3junk", "0x2", "2.5", "-1", "0"} {
		resp := postJSON(t, ts.URL+"/v1/process?passes="+bad, exampleSpec())
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("passes=%q: %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestProcessReportsEffectivePasses(t *testing.T) {
	ts := newTestServer(t)
	var body struct {
		EffectivePasses int `json:"effectivePasses"`
	}
	// Requesting more than MaxProcessPasses (default 4) is clamped, and the
	// clamp is reported instead of being silent.
	resp := postJSON(t, ts.URL+"/v1/process?passes=99", exampleSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("process status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &body)
	if body.EffectivePasses != 4 {
		t.Errorf("effectivePasses = %d, want 4 (clamped)", body.EffectivePasses)
	}
	// Default (no passes param) reports the default pass budget.
	resp = postJSON(t, ts.URL+"/v1/process", exampleSpec())
	decodeBody(t, resp, &body)
	if body.EffectivePasses != defaultProcessPasses {
		t.Errorf("effectivePasses = %d, want %d (default)", body.EffectivePasses, defaultProcessPasses)
	}
}

func TestExperimentRunClientCancel(t *testing.T) {
	// A canceled request context (client disconnect) must abort the Monte
	// Carlo run and surface as 499, not 500 and not a completed run.
	srv := New(quietConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	raw, _ := json.Marshal(experimentRunRequest{ID: "E1", Seed: 1, N: 5000})
	req := httptest.NewRequest(http.MethodPost, "/v1/experiments/run", bytes.NewReader(raw)).WithContext(ctx)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("canceled run: status %d, want %d; body: %s", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
}

func TestRequestIDHeader(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	// A client-supplied ID is honored, so IDs correlate across services.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "upstream-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "upstream-7" {
		t.Errorf("X-Request-ID = %q, want upstream-7", id)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Generate traffic: two successes and one 405 error.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/components", map[string]any{})
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE hitl_http_requests_total counter",
		`hitl_http_requests_total{route="/v1/healthz",method="GET",code="200"} 2`,
		`hitl_http_requests_total{route="/v1/components",method="POST",code="405"} 1`,
		"# TYPE hitl_http_request_errors_total counter",
		`hitl_http_request_errors_total{route="/v1/components"} 1`,
		"# TYPE hitl_http_in_flight_requests gauge",
		"hitl_http_in_flight_requests 1",
		"# TYPE hitl_http_request_duration_seconds histogram",
		`hitl_http_request_duration_seconds_bucket{route="/v1/healthz",le="+Inf"} 2`,
		`hitl_http_request_duration_seconds_count{route="/v1/healthz"} 2`,
		`hitl_http_request_duration_seconds_sum{route="/v1/healthz"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Bucket bounds render without exponents and cumulate monotonically.
	if !strings.Contains(text, `le="0.001"`) || !strings.Contains(text, `le="60"`) {
		t.Error("metrics output missing expected bucket bounds")
	}
}

func TestMetricsIncludeEngineSeries(t *testing.T) {
	ts := newTestServer(t)
	// Drive the simulation engine so the process-global telemetry counters
	// are provably populated regardless of test ordering.
	resp := postJSON(t, ts.URL+"/v1/experiments/run", map[string]any{"id": "E1", "n": 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiment run status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE hitl_sim_subjects_total counter",
		"# TYPE hitl_sim_runs_total counter",
		"# TYPE hitl_sim_stage_failures_total counter",
		`hitl_sim_stage_failures_total{stage="`,
		"# TYPE hitl_sim_run_duration_seconds histogram",
		`hitl_sim_run_duration_seconds_bucket{le="+Inf"}`,
		"hitl_sim_run_duration_seconds_count",
		"hitl_sim_run_duration_seconds_sum",
		"# TYPE hitl_sim_run_subjects_per_second histogram",
		"# TYPE hitl_sim_active_workers gauge",
		"# TYPE hitl_sim_last_run_workers gauge",
		"# TYPE hitl_sim_panics_recovered_total counter",
		"# TYPE hitl_server_shed_total counter",
		"# TYPE hitl_server_queue_depth gauge",
		"# TYPE hitl_server_degraded gauge",
		"# TYPE hitl_server_compute_deadline_total counter",
		"# TYPE hitl_sim_subject_traces_total counter",
		"# TYPE hitl_span_duration_seconds summary",
		`hitl_span_duration_seconds_count{span="experiment"}`,
		`hitl_span_duration_seconds_count{span="run"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestExperimentRunTraceSample(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/experiments/run?trace_sample=5&spans=1",
		map[string]any{"id": "E1", "n": 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Trace []struct {
			Subject int `json:"subject"`
			Checks  []struct {
				Stage string  `json:"stage"`
				P     float64 `json:"p"`
			} `json:"checks"`
		} `json:"trace"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	decodeBody(t, resp, &body)
	if len(body.Trace) == 0 || len(body.Trace) > 5 {
		t.Fatalf("got %d inline traces, want 1..5", len(body.Trace))
	}
	for _, tr := range body.Trace {
		if len(tr.Checks) == 0 {
			t.Errorf("subject %d trace has no stage checks", tr.Subject)
		}
		for _, c := range tr.Checks {
			if c.Stage == "" || c.P < 0 || c.P > 1 {
				t.Errorf("malformed check %+v", c)
			}
		}
	}
	sawRun := false
	for _, s := range body.Spans {
		if s.Name == "run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Errorf("span tree %v has no run span", body.Spans)
	}

	// Without the query parameters the response must omit both keys.
	resp = postJSON(t, ts.URL+"/v1/experiments/run", map[string]any{"id": "E1", "n": 150})
	var plain map[string]json.RawMessage
	decodeBody(t, resp, &plain)
	if _, ok := plain["trace"]; ok {
		t.Error("trace present without ?trace_sample")
	}
	if _, ok := plain["spans"]; ok {
		t.Error("spans present without ?spans=1")
	}
}

func TestExperimentRunTraceSampleClamped(t *testing.T) {
	ts := newTestServer(t)
	// Default MaxTraceSample is 50; an absurd request is clamped, not erred.
	resp := postJSON(t, ts.URL+"/v1/experiments/run?trace_sample=100000",
		map[string]any{"id": "E1", "n": 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Trace []json.RawMessage `json:"trace"`
	}
	decodeBody(t, resp, &body)
	if len(body.Trace) > 50 {
		t.Errorf("got %d inline traces, want at most the MaxTraceSample default of 50", len(body.Trace))
	}
}

func TestExperimentRunInvalidTraceSample(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{"trace_sample=0", "trace_sample=-3", "trace_sample=abc"} {
		resp := postJSON(t, ts.URL+"/v1/experiments/run?"+q, map[string]any{"id": "E1", "n": 50})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}
