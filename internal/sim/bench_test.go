package sim

import (
	"context"
	"runtime"
	"testing"

	"hitl/internal/telemetry"
)

// maxTraceOffAllocsPerRun is the regression ceiling for the trace-off hot
// path, guarded by BenchmarkRun. A 5000-subject run used to cost ~73k
// allocations (fresh rand.Rand + four receiver maps + default-Model copies
// + an eagerly built Trace per subject); the sharded engine with pooled
// RNGs, pooled receivers, and opt-in traces costs a few hundred — the
// ceiling leaves generous slack while still failing loudly if a per-subject
// allocation sneaks back in (each one costs at least N = 5000).
const maxTraceOffAllocsPerRun = 4000

// BenchmarkRun guards the tentpole's zero-cost-when-off promise: the
// trace-off variant runs with no tracer or recorder in the context and no
// trace collection in the subject function, so the per-subject hot path
// must stay allocation-free — the guard above fails the benchmark if
// allocs/op exceeds the ceiling. The trace-on variant attaches a span
// tracer, a 64-subject trace recorder, and a trace-collecting pipeline;
// Recorder.Consider still defers trace materialization to the few subjects
// that win reservoir slots. Re-run with:
//
//	go test -bench=BenchmarkRun -benchtime=2s -count=3 ./internal/sim
func BenchmarkRun(b *testing.B) {
	const n = 5000
	runner := Runner{Seed: 1, N: n, Workers: 8}

	b.Run("trace-off", func(b *testing.B) {
		subject := agentPipeline()
		ctx := context.Background()
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(ctx, subject); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "subjects/s")
		if perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N); perOp > maxTraceOffAllocsPerRun {
			b.Fatalf("trace-off run allocated %.0f objects/op, ceiling is %d; a per-subject allocation crept back into the hot path",
				perOp, maxTraceOffAllocsPerRun)
		}
	})

	b.Run("trace-on", func(b *testing.B) {
		subject := tracedAgentPipeline()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := telemetry.WithRecorder(context.Background(), telemetry.NewRecorder(64, 1))
			ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(nil))
			if _, err := runner.Run(ctx, subject); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "subjects/s")
	})
}
