package sim

import (
	"context"
	"testing"

	"hitl/internal/telemetry"
)

// BenchmarkRun guards the tentpole's zero-cost-when-off promise: the
// trace-off variant runs with no tracer or recorder in the context, so
// every telemetry call must short-circuit on a nil receiver. The trace-on
// variant attaches both a span tracer and a 64-subject trace recorder.
// Measured on the development container (Go 1.24, 8-way parallel runs of
// 5000 full-pipeline subjects, -benchtime=2s -count=3), the two variants
// overlap within run-to-run noise — medians ~82ms vs ~83ms ns/op, under 2%
// apart — because Recorder.Consider defers trace materialization to the
// few subjects that win reservoir slots: trace-on adds only ~0.6% allocs
// (73824 vs 73363 per run). Re-run with:
//
//	go test -bench=BenchmarkRun -benchtime=2s -count=3 ./internal/sim
func BenchmarkRun(b *testing.B) {
	const n = 5000
	runner := Runner{Seed: 1, N: n, Workers: 8}
	subject := agentPipeline()

	b.Run("trace-off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(ctx, subject); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "subjects/s")
	})

	b.Run("trace-on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := telemetry.WithRecorder(context.Background(), telemetry.NewRecorder(64, 1))
			ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(nil))
			if _, err := runner.Run(ctx, subject); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "subjects/s")
	})
}
