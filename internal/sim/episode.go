package sim

import (
	"context"
	"fmt"
)

// This file is the engine-level episode loop: a deterministic multi-round
// game between an adapting attacker and the simulated population. Each
// round is one ordinary engine run — bit-identical at any worker count,
// shardable within the round through the WithSubjectOffset/MergeResults
// contract — and the only state that crosses rounds is the aggregate
// summaries the policy sees. Rounds are sequential by construction: round
// r+1's parameters depend on round r's aggregates.

// RoundParams is the attacker-controlled parameter overrides for one
// round, keyed by scenario parameter name.
type RoundParams map[string]float64

// RoundAggregate is what one completed round exposes to the adaptive
// policy (and to reports): its index, the derived seed it ran under, the
// parameter overrides it ran with, and the aggregate metrics it produced.
// No per-subject state crosses the round boundary — that is what keeps
// rounds individually shardable and re-runnable.
type RoundAggregate struct {
	Round  int                `json:"round"`
	Seed   int64              `json:"seed"`
	Params RoundParams        `json:"params,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// AdaptivePolicy produces round r's parameter overrides from the history
// of rounds 0..r-1. It MUST be a pure function of its arguments: the
// round index and the previous rounds' aggregates (round 0 sees an empty
// history). Any randomness must come from deriving on RoundSeed — never
// from ambient state — so that an episode is deterministic from its
// master seed and any round can be reproduced standalone.
type AdaptivePolicy func(round int, prev []RoundAggregate) RoundParams

// RoundSeed derives round r's engine seed from the episode's master seed.
// The stride constant is disjoint from the sweep-point stride (1_000_003)
// and the scenario-layer strides, so episode rounds never collide with
// sweep points of the same master seed.
func RoundSeed(seed int64, round int) int64 {
	return splitmix64(seed, 2_000_003+round)
}

// RoundRunner executes one round as a normal engine run: it receives the
// round index, the round seed, and the policy's overrides, and returns
// the aggregate the policy (and the episode's caller) sees. The runner
// owns engine choice, sharding, and result collection; Episode only owns
// the loop and the determinism bookkeeping.
type RoundRunner func(ctx context.Context, round int, seed int64, params RoundParams) (RoundAggregate, error)

// Episode is a deterministic R-round adaptive run.
type Episode struct {
	// Seed is the master seed; round r runs under RoundSeed(Seed, r).
	Seed int64
	// Rounds is the round count R (must be >= 1).
	Rounds int
	// Policy produces each round's parameter overrides; nil means no
	// adaptation (every round runs the base parameters).
	Policy AdaptivePolicy
	// Run executes one round.
	Run RoundRunner
}

// Play runs the episode's rounds sequentially and returns every round's
// aggregate in order.
func (e Episode) Play(ctx context.Context) ([]RoundAggregate, error) {
	if e.Rounds < 1 {
		return nil, fmt.Errorf("sim: episode needs at least 1 round, got %d", e.Rounds)
	}
	if e.Run == nil {
		return nil, fmt.Errorf("sim: episode has no round runner")
	}
	history := make([]RoundAggregate, 0, e.Rounds)
	for r := 0; r < e.Rounds; r++ {
		if err := ctx.Err(); err != nil {
			return history, err
		}
		var params RoundParams
		if e.Policy != nil {
			params = e.Policy(r, history)
		}
		agg, err := e.Run(ctx, r, RoundSeed(e.Seed, r), params)
		if err != nil {
			return history, fmt.Errorf("sim: episode round %d: %w", r, err)
		}
		agg.Round = r
		agg.Seed = RoundSeed(e.Seed, r)
		agg.Params = params
		history = append(history, agg)
	}
	return history, nil
}
