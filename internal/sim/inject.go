package sim

import (
	"context"
	"fmt"
)

// Injector perturbs subject execution for fault-injection rehearsals. The
// engine calls Before just before a subject's scenario function runs and
// Perturb on the outcome of every subject that returned without error.
// Implementations must be deterministic in (runSeed, subject) — never in
// arrival order, worker identity, or wall clock — so a faulted run stays
// bit-identical at any worker count, matching the engine's determinism
// contract. Before may panic (contained by the engine into a *PanicError)
// or sleep (artificial latency); Perturb may rewrite the outcome it is
// handed (injected stage failures, corrupted communications) and returns
// the outcome to aggregate. Outcomes pass by value — not by pointer — so
// the nil-injector hot path never forces the outcome to escape to the
// heap. Implementations must be safe for concurrent use: workers call them
// in parallel.
//
// The canonical implementation is internal/faults, which parses a textual
// fault spec into an Injector; the seam is an interface so sim does not
// depend on it.
type Injector interface {
	// Before runs ahead of the subject's scenario function.
	Before(runSeed int64, subject int)
	// Perturb returns the completed subject's outcome, possibly rewritten.
	Perturb(runSeed int64, subject int, o Outcome) Outcome
}

// injectorKey carries an Injector through a context, like telemetry's
// tracer and recorder keys.
type injectorKey struct{}

// WithInjector returns a context that carries the fault injector. Runs
// started under the returned context apply it to every subject; a nil
// injector is equivalent to not attaching one.
func WithInjector(ctx context.Context, inj Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, inj)
}

// InjectorFromContext returns the fault injector attached to ctx, or nil.
func InjectorFromContext(ctx context.Context) Injector {
	inj, _ := ctx.Value(injectorKey{}).(Injector)
	return inj
}

// PanicError reports a subject whose scenario function (or injected fault)
// panicked. The engine contains the panic: the run fails with this error —
// lowest panicking subject wins, consistent with ordinary subject errors —
// but the process, the other workers, and any sibling runs survive.
type PanicError struct {
	// Subject is the index of the subject that panicked.
	Subject int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error describes the panic without the stack; read Stack for the trace.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: subject %d panicked: %v", e.Subject, e.Value)
}
