package sim

// Compiled programs: the per-run compile step that lowers one encounter's
// stage models (via agent.LowerEncounter) plus a population spec into a
// flat Program, evaluated by the same scheduling/containment machinery as
// the interpreted path but without a Receiver, without maps, and without
// per-subject allocations. On top of compilation sits the analytic engine:
// for populations whose sampled profiles are all identical (see
// population.Spec.MeanField), every subject is an independent Bernoulli
// chain with the same stage thresholds, so the aggregate distribution has
// a closed form and needs no Monte Carlo at all.

import (
	"context"
	"fmt"
	"math/rand"

	"hitl/internal/agent"
	"hitl/internal/gems"
	"hitl/internal/population"
)

// Engine path names, as recorded in EngineReport.Path, pprof labels, run
// reports, and the scenario layer's engine selection.
const (
	EngineInterpreted = "interpreted"
	EngineCompiled    = "compiled"
	EngineAnalytic    = "analytic"
)

// ErrNotCompilable reports a scenario shape the compiler refuses; the
// caller falls back to the interpreted walk. It aliases
// agent.ErrNotLowerable so errors.Is matches refusals from either layer
// with a single sentinel.
var ErrNotCompilable = agent.ErrNotLowerable

// Program is one compiled run: a population to sample and a lowered
// encounter to evaluate each sample against. Subject i draws its profile
// and its stage outcomes from the same deterministic stream subject i of
// the equivalent interpreted run uses, in the same order, so results are
// bit-identical to Run with the corresponding SubjectFunc.
type Program struct {
	// Pop is sampled once per subject, consuming the leading draws of the
	// subject's stream exactly as interpreted scenarios do.
	Pop population.Spec
	// Params is the lowered encounter evaluated against each sample.
	Params *agent.StageParams
}

// NewProgram compiles (population, encounter) into a Program. It returns
// an error wrapping ErrNotCompilable for shapes only the interpreter
// reproduces: encounters agent.LowerEncounter refuses (skill-installing
// communications, delayed application, decaying trained skills), and
// populations that can sample ages outside the [0, 130] the interpreted
// path's per-subject profile validation enforces — compilation validates
// once, so it must be able to prove every sample valid up front.
func NewProgram(pop population.Spec, m *agent.Model, e agent.Encounter, trained bool, skill agent.Skill) (*Program, error) {
	if err := pop.Validate(); err != nil {
		return nil, err
	}
	if pop.AgeMax > 130 {
		return nil, fmt.Errorf("%w: population %q can sample ages beyond 130, which per-subject validation would reject", ErrNotCompilable, pop.Name)
	}
	sp, err := agent.LowerEncounter(m, e, trained, skill)
	if err != nil {
		return nil, err
	}
	return &Program{Pop: pop, Params: sp}, nil
}

// subject returns the compiled subject evaluator. The profile is a stack
// value and StageParams.Eval neither allocates nor retains it, so the
// returned SubjectFunc is allocation-free per subject in steady state.
func (p *Program) subject() SubjectFunc {
	pop := p.Pop
	sp := p.Params
	return func(rng *rand.Rand, _ int) (Outcome, error) {
		prof := pop.Sample(rng)
		return FromAgentResult(sp.Eval(rng, &prof)), nil
	}
}

// RunProgram executes the compiled program under the same scheduling,
// cancellation, panic containment, and aggregation as Run, and returns a
// bit-identical Result. Differences from the interpreted path are only
// observational: compiled subjects never materialize stage traces (a
// telemetry.Recorder sees check-less trajectories) and agent-level fault
// probes never fire — callers that need either keep using Run; the
// scenario layer's engine selection enforces this.
func (ru Runner) RunProgram(ctx context.Context, p *Program) (*Result, error) {
	if p == nil || p.Params == nil {
		return nil, fmt.Errorf("sim: nil program")
	}
	return ru.run(ctx, p.subject(), EngineCompiled, newJumpSource)
}

// Distribution is the exact per-subject outcome law of an
// analytically-eligible program: each field is a probability mass (they
// are what Result's corresponding counters converge to, divided by N, as
// N grows). Masses are exact up to float64 rounding — no sampling is
// involved.
type Distribution struct {
	// Heed is the probability the subject performs the desired behavior
	// (including heuristic-path compliance and unverified completions).
	Heed float64 `json:"heed"`
	// StageFailures attributes the complementary mass to the C-HIP stage
	// where processing stopped. Only nonzero entries are present.
	StageFailures map[agent.Stage]float64 `json:"stage_failures,omitempty"`
	// ErrorClasses is the GEMS class distribution over all subjects
	// (NoError for every subject that never reached a behavior-stage
	// error, exactly like the Monte Carlo aggregation counts it).
	ErrorClasses map[gems.ErrorClass]float64 `json:"error_classes,omitempty"`
	// Spoofed and Heuristic are the probabilities of those flags.
	Spoofed   float64 `json:"spoofed,omitempty"`
	Heuristic float64 `json:"heuristic,omitempty"`
}

// AnalyticEligible reports whether every subject the program samples is
// statistically identical: all trait spreads zero, no expert
// subpopulation, and a degenerate mental-model coin. Then the run is N
// independent Bernoulli chains with one shared threshold vector and
// Exact computes the aggregate law in closed form.
// population.Spec.MeanField produces eligible specs.
func (p *Program) AnalyticEligible() bool {
	s := p.Pop
	if s.ExpertFraction != 0 {
		return false
	}
	if s.AccurateModelBase != 0 && s.AccurateModelBase != 1 {
		return false
	}
	for i := population.DimIndex(0); i < population.NumCoreDims; i++ {
		if s.CoreTrait(i).SD != 0 {
			return false
		}
	}
	for _, d := range s.ExtDims() {
		if d.Trait.SD != 0 {
			return false
		}
	}
	return true
}

// meanSubject is the one profile an eligible population ever produces:
// every trait at its mean (TruncNormal with sd 0 returns the mean
// exactly), the degenerate mental-model outcome, and any in-range age —
// no stage model reads Age.
func (p *Program) meanSubject() population.Profile {
	s := p.Pop
	prof := population.Profile{
		Age:                 s.AgeMin,
		AccurateMentalModel: s.AccurateModelBase == 1,
	}
	for i := population.DimIndex(0); i < population.NumCoreDims; i++ {
		prof.SetDim(i, s.CoreTrait(i).Mean)
	}
	return prof
}

// Exact computes the program's aggregate outcome distribution in closed
// form by propagating probability mass through the stage chain — the
// analytic counterpart of Eval's sampled walk. It refuses (wrapping
// ErrNotCompilable) when the program is not AnalyticEligible.
//
// Derivation: with one shared threshold vector, the chain is a Markov
// walk over stages. Mass failing a stage check stops there
// (StageFailures), except under a blocking communication where
// maintenance/comprehension/acquisition failures reroute to the heuristic
// decision: that mass carries the Heuristic flag and splits between
// compliance and a behavior-stage stop. Mass surviving to the behavior
// stage decomposes by the GEMS draw order — mistake, execution gulf, then
// per-step lapse/slip, then evaluation gulf (an unverified completion
// that still counts as heeded) — and the remainder completes verified.
func (p *Program) Exact() (*Distribution, error) {
	if !p.AnalyticEligible() {
		return nil, fmt.Errorf("%w: population %q samples non-identical subjects; analytic aggregation needs a mean-field spec", ErrNotCompilable, p.Pop.Name)
	}
	prof := p.meanSubject()
	pr := p.Params.Probabilities(&prof)

	d := &Distribution{
		StageFailures: make(map[agent.Stage]float64),
		ErrorClasses:  make(map[gems.ErrorClass]float64),
	}
	if pr.Spoofed {
		// Spoofed interference kills delivery for everyone before any draw.
		d.Spoofed = 1
		d.StageFailures[agent.StageDelivery] = 1
		d.ErrorClasses[gems.NoError] = 1
		return d, nil
	}

	alive := 1.0
	// step moves the surviving mass through one stage check, routing the
	// failing fraction to the stage's failure bucket.
	step := func(pass float64, s agent.Stage) {
		if f := alive * (1 - pass); f > 0 {
			d.StageFailures[s] += f
		}
		alive *= pass
	}
	heur := 0.0
	// heurStep is the blocking-communication variant: failing mass joins
	// the heuristic-decision pool instead of stopping.
	heurStep := func(pass float64) {
		heur += alive * (1 - pass)
		alive *= pass
	}

	step(pr.Deliver, agent.StageDelivery)
	step(pr.Survive, agent.StageDelivery) // dismissal race; Survive == 1 without one
	step(pr.Notice, agent.StageAttentionSwitch)
	if pr.Blocking {
		heurStep(pr.Maintain)
		heurStep(pr.Comprehend)
		heurStep(pr.Acquire)
	} else {
		step(pr.Maintain, agent.StageAttentionMaintenance)
		step(pr.Comprehend, agent.StageComprehension)
		step(pr.Acquire, agent.StageKnowledgeAcquisition)
	}
	step(pr.Retain, agent.StageKnowledgeRetention) // == 1 for compilable shapes
	step(pr.Transfer, agent.StageKnowledgeTransfer)
	step(pr.Believe, agent.StageAttitudesBeliefs)
	step(pr.Motivate, agent.StageMotivation)
	step(pr.Capable, agent.StageCapabilities)

	// Behavior stage: GEMS event decomposition in draw order.
	surv := alive
	mistake := surv * pr.Mistake
	surv -= mistake
	gexec := surv * pr.ExecGulf
	surv -= gexec
	lapse, slip := 0.0, 0.0
	for s := 0; s < pr.Steps; s++ {
		l := surv * pr.Lapse
		surv -= l
		lapse += l
		sl := surv * pr.Slip
		surv -= sl
		slip += sl
	}
	geval := surv * pr.EvalGulf
	surv -= geval

	for _, ec := range []struct {
		class gems.ErrorClass
		mass  float64
	}{
		{gems.Mistake, mistake},
		{gems.ExecutionGulf, gexec},
		{gems.Lapse, lapse},
		{gems.Slip, slip},
		{gems.EvaluationGulf, geval},
	} {
		if ec.mass > 0 {
			d.ErrorClasses[ec.class] = ec.mass
		}
	}
	if fail := mistake + gexec + lapse + slip; fail > 0 {
		d.StageFailures[agent.StageBehavior] += fail
	}
	// Everyone who never hit a behavior-stage error — including every
	// pre-behavior failure and the whole heuristic pool — counts NoError,
	// matching how the Monte Carlo aggregation classifies subjects.
	d.ErrorClasses[gems.NoError] = 1 - (mistake + gexec + lapse + slip + geval)

	// Heuristic pool: flagged either way, heeds with the heuristic
	// probability, otherwise stops at the behavior stage.
	d.Heuristic = heur
	heurHeed := heur * pr.Heuristic
	if miss := heur - heurHeed; miss > 0 {
		d.StageFailures[agent.StageBehavior] += miss
	}

	// Heeded mass: verified completions, unverified (evaluation-gulf)
	// completions, and heuristic compliance.
	d.Heed = surv + geval + heurHeed
	return d, nil
}
