package sim

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"hitl/internal/agent"
	"hitl/internal/comms"
	"hitl/internal/gems"
	"hitl/internal/population"
	"hitl/internal/stimuli"
)

// studyEncounter is the phishing-study encounter shape: one warning, busy
// environment, hazard present, the leave-suspicious-site task.
func studyEncounter(w comms.Communication) agent.Encounter {
	return agent.Encounter{
		Comm:          w,
		Env:           stimuli.Busy(),
		HazardPresent: true,
		Task:          gems.LeaveSuspiciousSite(),
	}
}

// interpretedSubject mirrors the interpreted scenario walk for the same
// (population, encounter, training) triple a Program compiles.
func interpretedSubject(pop population.Spec, e agent.Encounter, trained bool, skill agent.Skill) SubjectFunc {
	return func(rng *rand.Rand, _ int) (Outcome, error) {
		r := agent.NewReceiver(pop.Sample(rng))
		if trained {
			r.Train(e.Comm.Topic, skill)
		}
		ar, err := r.Process(rng, e)
		if err != nil {
			return Outcome{}, err
		}
		return FromAgentResult(ar), nil
	}
}

// TestRunProgramBitIdentity is the compiled engine's contract: for every
// warning preset, trained and untrained, across seeds and worker counts,
// RunProgram returns a Result deeply equal to Run with the equivalent
// interpreted subject function.
func TestRunProgramBitIdentity(t *testing.T) {
	pop := population.GeneralPublic()
	skill := agent.Skill{Level: 0.85, Interactivity: 0.85, AcquiredDay: 0}
	warnings := []comms.Communication{
		comms.FirefoxActiveWarning(),
		comms.IEActiveWarning(),
		comms.IEPassiveWarning(),
		comms.ToolbarPassiveIndicator(),
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, w := range warnings {
		for _, trained := range []bool{false, true} {
			e := studyEncounter(w)
			prog, err := NewProgram(pop, nil, e, trained, skill)
			if err != nil {
				t.Fatalf("%s trained=%v: NewProgram: %v", w.ID, trained, err)
			}
			for _, seed := range []int64{1, 42, 20080124} {
				var want *Result
				for _, workers := range workerCounts {
					ru := Runner{Seed: seed, N: 400, Workers: workers}
					interp, err := ru.Run(context.Background(), interpretedSubject(pop, e, trained, skill))
					if err != nil {
						t.Fatal(err)
					}
					comp, err := ru.RunProgram(context.Background(), prog)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(interp, comp) {
						t.Fatalf("%s trained=%v seed=%d workers=%d: compiled diverged\ninterpreted: %+v\ncompiled:    %+v",
							w.ID, trained, seed, workers, interp, comp)
					}
					if want == nil {
						want = comp
					} else if !reflect.DeepEqual(want, comp) {
						t.Fatalf("%s trained=%v seed=%d workers=%d: compiled result depends on worker count", w.ID, trained, seed, workers)
					}
				}
			}
		}
	}
}

// TestNewProgramRefusals pins the shapes compilation must hand back to the
// interpreter.
func TestNewProgramRefusals(t *testing.T) {
	pop := population.GeneralPublic()

	training := studyEncounter(comms.FirefoxActiveWarning())
	training.Comm = comms.AntiPhishingTraining()
	if _, err := NewProgram(pop, nil, training, false, agent.Skill{}); !errors.Is(err, ErrNotCompilable) {
		t.Errorf("training communication: want ErrNotCompilable, got %v", err)
	}

	old := pop
	old.AgeMax = 200
	if _, err := NewProgram(old, nil, studyEncounter(comms.FirefoxActiveWarning()), false, agent.Skill{}); !errors.Is(err, ErrNotCompilable) {
		t.Errorf("out-of-range ages: want ErrNotCompilable, got %v", err)
	}
}

// TestAnalyticMatchesMonteCarlo is the pinned statistical cross-check: the
// closed-form distribution of a mean-field program must match its own
// Monte Carlo aggregation within binomial sampling tolerance, on every
// reported mass.
func TestAnalyticMatchesMonteCarlo(t *testing.T) {
	const n = 40000
	skill := agent.Skill{Level: 0.85, Interactivity: 0.85, AcquiredDay: 0}
	pop := population.GeneralPublic().MeanField()
	for _, w := range []comms.Communication{
		comms.FirefoxActiveWarning(), // blocking: exercises the heuristic pool
		comms.IEPassiveWarning(),     // dismissal race
		comms.ToolbarPassiveIndicator(),
	} {
		for _, trained := range []bool{false, true} {
			prog, err := NewProgram(pop, nil, studyEncounter(w), trained, skill)
			if err != nil {
				t.Fatalf("%s: NewProgram: %v", w.ID, err)
			}
			if !prog.AnalyticEligible() {
				t.Fatalf("%s: mean-field program should be analytic-eligible", w.ID)
			}
			d, err := prog.Exact()
			if err != nil {
				t.Fatalf("%s: Exact: %v", w.ID, err)
			}

			// Conservation: heed + stage-failure masses account for
			// everyone, and the class distribution is a distribution.
			totalFail := 0.0
			for _, m := range d.StageFailures {
				totalFail += m
			}
			if got := d.Heed + totalFail; math.Abs(got-1) > 1e-9 {
				t.Errorf("%s trained=%v: heed+failures = %v, want 1", w.ID, trained, got)
			}
			totalClass := 0.0
			for _, m := range d.ErrorClasses {
				totalClass += m
			}
			if math.Abs(totalClass-1) > 1e-9 {
				t.Errorf("%s trained=%v: error-class masses sum to %v, want 1", w.ID, trained, totalClass)
			}

			mc, err := Runner{Seed: 77, N: n}.RunProgram(context.Background(), prog)
			if err != nil {
				t.Fatal(err)
			}
			// 4-sigma binomial tolerance with a floor for near-degenerate
			// masses: ~1 in 16k per comparison by chance.
			tol := func(p float64) float64 {
				return math.Max(4*math.Sqrt(p*(1-p)/n), 20.0/n)
			}
			check := func(name string, mass float64, count int) {
				if got := float64(count) / n; math.Abs(got-mass) > tol(mass) {
					t.Errorf("%s trained=%v: %s rate %v vs analytic %v (tol %v)",
						w.ID, trained, name, got, mass, tol(mass))
				}
			}
			check("heed", d.Heed, mc.Heed.Successes)
			check("heuristic", d.Heuristic, mc.Heuristic)
			check("spoofed", d.Spoofed, mc.Spoofed)
			for _, s := range agent.Stages() {
				check("stage "+s.String(), d.StageFailures[s], mc.StageFailures[s])
			}
			for _, c := range []gems.ErrorClass{gems.NoError, gems.Mistake, gems.ExecutionGulf, gems.Lapse, gems.Slip, gems.EvaluationGulf} {
				check("class "+c.String(), d.ErrorClasses[c], mc.ErrorClasses[c])
			}
		}
	}
}

// TestAnalyticRefusesDiversePopulations: a population with real spread has
// no shared threshold vector; Exact must refuse rather than approximate.
func TestAnalyticRefusesDiversePopulations(t *testing.T) {
	prog, err := NewProgram(population.GeneralPublic(), nil, studyEncounter(comms.FirefoxActiveWarning()), false, agent.Skill{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.AnalyticEligible() {
		t.Fatal("general-public program must not be analytic-eligible")
	}
	if _, err := prog.Exact(); !errors.Is(err, ErrNotCompilable) {
		t.Fatalf("Exact on diverse population: want ErrNotCompilable, got %v", err)
	}
}

// maxCompiledAllocsPerRun bounds the compiled path's per-run allocation
// overhead (shards, worker goroutines, spans, pprof label sets). With 5000
// subjects per run, the ceiling keeps the steady-state per-subject cost at
// zero: a single allocation on the subject path would cost at least 5000.
const maxCompiledAllocsPerRun = 2000

// BenchmarkRunProgram is the compiled-path counterpart of BenchmarkRun's
// trace-off case; BENCH_sim.json derives its compiled subjects/s and
// allocs-per-subject figures from the same program shape.
func BenchmarkRunProgram(b *testing.B) {
	const n = 5000
	prog, err := NewProgram(population.GeneralPublic(), nil, studyEncounter(comms.FirefoxActiveWarning()), false, agent.Skill{})
	if err != nil {
		b.Fatal(err)
	}
	runner := Runner{Seed: 1, N: n, Workers: 8}
	ctx := context.Background()
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunProgram(ctx, prog); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "subjects/s")
	perRun := float64(after.Mallocs-before.Mallocs) / float64(b.N)
	b.ReportMetric(perRun/n, "allocs/subject")
	if perRun > maxCompiledAllocsPerRun {
		b.Fatalf("compiled run allocated %.0f objects/op, ceiling is %d; a per-subject allocation crept into the compiled path",
			perRun, maxCompiledAllocsPerRun)
	}
}
