package sim

import (
	"context"
	"sync"
)

// Run reporting: an opt-in, per-context collector that each Run call folds
// a structured EngineReport into. Like the telemetry Recorder, it is read
// from the context once per run and costs nothing when absent, so the
// allocation-free hot path is unchanged for callers that don't ask for a
// report. The layers above (scenario runs, jobs, server handlers, CLIs)
// aggregate the collected EngineReports into a RunReport envelope.

// PhaseTimes splits a run's wall time into its three phases: setup (from
// entry to worker launch), compute (workers running), and merge (shard
// aggregation). Wall times are scheduling-dependent by nature; report
// canonicalization zeroes them before persisting.
type PhaseTimes struct {
	SetupSeconds   float64 `json:"setup_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	MergeSeconds   float64 `json:"merge_seconds"`
}

// add accumulates phase times across engine runs (sweeps fold many runs
// into one report).
func (p *PhaseTimes) add(q PhaseTimes) {
	p.SetupSeconds += q.SetupSeconds
	p.ComputeSeconds += q.ComputeSeconds
	p.MergeSeconds += q.MergeSeconds
}

// Add is the exported accumulator used by report builders outside sim.
func (p *PhaseTimes) Add(q PhaseTimes) { p.add(q) }

// EngineReport is one Run call's diagnostic account: what was asked for,
// what actually ran, where the time went, and how it ended. Everything
// except the phase times is deterministic in (seed, spec) at any worker
// count.
type EngineReport struct {
	// Path is the engine path that produced the run: EngineInterpreted for
	// the agent.Receiver walk, EngineCompiled for a lowered Program.
	// (Analytic answers involve no engine run at all, so no EngineReport
	// ever carries EngineAnalytic; the layers above record it on the
	// RunReport envelope instead.)
	Path string `json:"path,omitempty"`
	Seed int64  `json:"seed"`
	// N is the configured subject count; Completed is how many subjects
	// were actually aggregated (less than N only for partial runs).
	N         int `json:"n"`
	Completed int `json:"completed"`
	// RequestedWorkers is Runner.Workers as configured (0 = GOMAXPROCS);
	// EffectiveWorkers is the clamped parallelism the run used.
	RequestedWorkers int            `json:"requested_workers"`
	EffectiveWorkers int            `json:"effective_workers"`
	Phases           PhaseTimes     `json:"phases"`
	StageFailures    map[string]int `json:"stage_failures,omitempty"`
	TimedOut         bool           `json:"timed_out,omitempty"`
	Canceled         bool           `json:"canceled,omitempty"`
	Partial          bool           `json:"partial,omitempty"`
	PanicRecovered   bool           `json:"panic_recovered,omitempty"`
	Error            string         `json:"error,omitempty"`
}

// ReportCollector accumulates the EngineReports of every Run executed
// under a context it is attached to. Sweeps and multi-step scenario runs
// contribute one report per engine run.
type ReportCollector struct {
	mu      sync.Mutex
	reports []EngineReport
}

// NewReportCollector returns an empty collector.
func NewReportCollector() *ReportCollector { return &ReportCollector{} }

func (c *ReportCollector) add(r EngineReport) {
	c.mu.Lock()
	c.reports = append(c.reports, r)
	c.mu.Unlock()
}

// Reports returns a copy of the collected engine reports in collection
// order. Parallel sweeps may interleave; callers that need determinism
// aggregate order-independently.
func (c *ReportCollector) Reports() []EngineReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EngineReport, len(c.reports))
	copy(out, c.reports)
	return out
}

type collectorKey struct{}

// WithReportCollector returns a context carrying the collector; every
// sim.Run under it appends an EngineReport.
func WithReportCollector(ctx context.Context, c *ReportCollector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, collectorKey{}, c)
}

// ReportCollectorFromContext returns the attached collector, or nil when
// reporting is off.
func ReportCollectorFromContext(ctx context.Context) *ReportCollector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(collectorKey{}).(*ReportCollector)
	return c
}
