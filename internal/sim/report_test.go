package sim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hitl/internal/agent"
)

func TestReportCollectorCapturesRun(t *testing.T) {
	col := NewReportCollector()
	ctx := WithReportCollector(context.Background(), col)
	ru := Runner{Seed: 3, N: 400, Workers: 2}
	if _, err := ru.Run(ctx, coinFlip(0.5)); err != nil {
		t.Fatal(err)
	}
	reports := col.Reports()
	if len(reports) != 1 {
		t.Fatalf("collected %d reports, want 1", len(reports))
	}
	er := reports[0]
	if er.Seed != 3 || er.N != 400 || er.Completed != 400 {
		t.Errorf("report = seed %d n %d completed %d, want 3/400/400", er.Seed, er.N, er.Completed)
	}
	if er.RequestedWorkers != 2 {
		t.Errorf("requested workers = %d, want 2", er.RequestedWorkers)
	}
	if er.EffectiveWorkers < 1 {
		t.Errorf("effective workers = %d, want >= 1", er.EffectiveWorkers)
	}
	if er.Phases.ComputeSeconds <= 0 {
		t.Errorf("compute phase = %g, want > 0", er.Phases.ComputeSeconds)
	}
	if er.StageFailures[agent.StageAttentionSwitch.String()] == 0 {
		t.Errorf("stage failures = %v, want attention-switch counts", er.StageFailures)
	}
	if er.Partial || er.TimedOut || er.Canceled || er.PanicRecovered || er.Error != "" {
		t.Errorf("clean run flagged: %+v", er)
	}
}

// TestReportCollectorSweepAndDeterminism runs a sweep (one engine run per
// point) and checks the collector sees every run with deterministic,
// worker-independent content.
func TestReportCollectorSweepAndDeterminism(t *testing.T) {
	sweep := func(workers int) []EngineReport {
		col := NewReportCollector()
		ctx := WithReportCollector(context.Background(), col)
		ru := Runner{Seed: 11, N: 200, Workers: workers}
		_, err := ru.Sweep(ctx, []float64{0.2, 0.8}, func(p float64) SubjectFunc { return coinFlip(p) })
		if err != nil {
			t.Fatal(err)
		}
		return col.Reports()
	}
	r1, r4 := sweep(1), sweep(4)
	if len(r1) != 2 || len(r4) != 2 {
		t.Fatalf("reports per sweep = %d and %d, want 2", len(r1), len(r4))
	}
	for i := range r1 {
		a, b := r1[i], r4[i]
		if a.Seed != b.Seed || a.Completed != b.Completed {
			t.Errorf("point %d differs across workers: %+v vs %+v", i, a, b)
		}
		for stage, n := range a.StageFailures {
			if b.StageFailures[stage] != n {
				t.Errorf("point %d stage %s: %d vs %d by worker count", i, stage, n, b.StageFailures[stage])
			}
		}
	}
}

func TestReportCollectorRecordsFailure(t *testing.T) {
	boom := errors.New("boom")
	col := NewReportCollector()
	ctx := WithReportCollector(context.Background(), col)
	ru := Runner{Seed: 5, N: 50}
	_, err := ru.Run(ctx, func(rng *rand.Rand, i int) (Outcome, error) { return Outcome{}, boom })
	_ = err // exercised below via the report
	reports := col.Reports()
	if len(reports) != 1 {
		t.Fatalf("collected %d reports, want 1", len(reports))
	}
	if reports[0].Error == "" {
		t.Error("failed run's report carries no error")
	}
}

func TestReportCollectorAbsentIsFree(t *testing.T) {
	if ReportCollectorFromContext(context.Background()) != nil {
		t.Fatal("collector from empty context")
	}
	// No collector attached: runs behave identically.
	if _, err := (Runner{Seed: 1, N: 10}).Run(context.Background(), coinFlip(0.5)); err != nil {
		t.Fatal(err)
	}
}
