package sim

import (
	"math/rand"
	"testing"
)

// TestFastSourceMatchesStdlib locks down the engine's core determinism
// claim: fastSource produces exactly the stream of rand.NewSource for any
// seed, so pooled re-seeding reproduces SubjectRand's historical streams
// bit-for-bit.
func TestFastSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 89482311, 20080124, 1 << 40, -(1 << 40), int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1}
	pick := rand.New(rand.NewSource(12345))
	for i := 0; i < 50; i++ {
		seeds = append(seeds, pick.Int63()-pick.Int63())
	}

	fast := &fastSource{}
	for _, seed := range seeds {
		std := rand.NewSource(seed).(rand.Source64)
		fast.Seed(seed)
		// Cover more than a full 607-word state cycle so the feedback
		// path is exercised, not just the freshly seeded words.
		for i := 0; i < 2000; i++ {
			if got, want := fast.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: fastSource.Uint64() = %d, stdlib = %d", seed, i, got, want)
			}
		}
	}

	// Through rand.New, derived draws (Float64, NormFloat64, Intn) must
	// match too — these are what scenarios actually consume.
	for _, seed := range seeds[:8] {
		fast.Seed(seed)
		a := rand.New(fast)
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, x, y)
			}
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, x, y)
			}
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, x, y)
			}
		}
	}

	// Re-seeding a used source must be indistinguishable from a fresh one.
	fast.Seed(7)
	for i := 0; i < 1000; i++ {
		fast.Uint64()
	}
	fast.Seed(42)
	std := rand.NewSource(42).(rand.Source64)
	for i := 0; i < 1000; i++ {
		if got, want := fast.Uint64(), std.Uint64(); got != want {
			t.Fatalf("re-seeded draw %d: %d != %d", i, got, want)
		}
	}
}

// TestJumpSourceMatchesStdlib holds the lazily-materialized jump source to
// the same standard: bit-identical streams to rand.NewSource at every
// seed, across state-cycle wrap-around (where half-materialized state
// words meet written-back ones) and across re-seeding.
func TestJumpSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 89482311, 20080124, 1 << 40, -(1 << 40), int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1}
	pick := rand.New(rand.NewSource(54321))
	for i := 0; i < 50; i++ {
		seeds = append(seeds, pick.Int63()-pick.Int63())
	}

	jump := &jumpSource{}
	for _, seed := range seeds {
		std := rand.NewSource(seed).(rand.Source64)
		jump.Seed(seed)
		// Short prefixes are the production shape (a subject consumes a few
		// dozen draws); 2000 draws also cover three full state wraps so the
		// feedback writes interleave with on-demand materialization.
		for i := 0; i < 2000; i++ {
			if got, want := jump.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: jumpSource.Uint64() = %d, stdlib = %d", seed, i, got, want)
			}
		}
	}

	// Derived draws through rand.New, as scenarios consume them.
	for _, seed := range seeds[:8] {
		jump.Seed(seed)
		a := rand.New(jump)
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, x, y)
			}
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, x, y)
			}
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, x, y)
			}
		}
	}

	// Re-seeding after a partial and after a wrapped stream must both be
	// indistinguishable from a fresh source: stale valid bits or vec words
	// from the prior seed may not leak.
	for _, used := range []int{3, 1000} {
		jump.Seed(7)
		for i := 0; i < used; i++ {
			jump.Uint64()
		}
		jump.Seed(42)
		std := rand.NewSource(42).(rand.Source64)
		for i := 0; i < 1000; i++ {
			if got, want := jump.Uint64(), std.Uint64(); got != want {
				t.Fatalf("re-seeded (after %d draws) draw %d: %d != %d", used, i, got, want)
			}
		}
	}

	// The jump source must agree with fastSource too (the interpreted
	// path's eager implementation) — they are two implementations of one
	// stream contract.
	fast := &fastSource{}
	for _, seed := range seeds[:12] {
		jump.Seed(seed)
		fast.Seed(seed)
		for i := 0; i < 700; i++ {
			if got, want := jump.Uint64(), fast.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: jumpSource %d != fastSource %d", seed, i, got, want)
			}
		}
	}
}
