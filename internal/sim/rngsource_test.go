package sim

import (
	"math/rand"
	"testing"
)

// TestFastSourceMatchesStdlib locks down the engine's core determinism
// claim: fastSource produces exactly the stream of rand.NewSource for any
// seed, so pooled re-seeding reproduces SubjectRand's historical streams
// bit-for-bit.
func TestFastSourceMatchesStdlib(t *testing.T) {
	seeds := []int64{0, 1, -1, 89482311, 20080124, 1 << 40, -(1 << 40), int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1}
	pick := rand.New(rand.NewSource(12345))
	for i := 0; i < 50; i++ {
		seeds = append(seeds, pick.Int63()-pick.Int63())
	}

	fast := &fastSource{}
	for _, seed := range seeds {
		std := rand.NewSource(seed).(rand.Source64)
		fast.Seed(seed)
		// Cover more than a full 607-word state cycle so the feedback
		// path is exercised, not just the freshly seeded words.
		for i := 0; i < 2000; i++ {
			if got, want := fast.Uint64(), std.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: fastSource.Uint64() = %d, stdlib = %d", seed, i, got, want)
			}
		}
	}

	// Through rand.New, derived draws (Float64, NormFloat64, Intn) must
	// match too — these are what scenarios actually consume.
	for _, seed := range seeds[:8] {
		fast.Seed(seed)
		a := rand.New(fast)
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, x, y)
			}
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, x, y)
			}
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, x, y)
			}
		}
	}

	// Re-seeding a used source must be indistinguishable from a fresh one.
	fast.Seed(7)
	for i := 0; i < 1000; i++ {
		fast.Uint64()
	}
	fast.Seed(42)
	std := rand.NewSource(42).(rand.Source64)
	for i := 0; i < 1000; i++ {
		if got, want := fast.Uint64(), std.Uint64(); got != want {
			t.Fatalf("re-seeded draw %d: %d != %d", i, got, want)
		}
	}
}
