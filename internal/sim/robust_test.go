package sim

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// baseline, proving the engine leaked nothing.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestRunRecoversSubjectPanic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	res, err := Runner{Seed: 1, N: 500, Workers: 8}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		if i == 137 {
			panic("poisoned subject model")
		}
		return Outcome{Heeded: true}, nil
	})
	if res != nil {
		t.Errorf("res = %+v, want nil", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Subject != 137 {
		t.Errorf("PanicError.Subject = %d, want 137", pe.Subject)
	}
	if pe.Value != "poisoned subject model" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("PanicError.Stack does not look like a stack trace")
	}
	if want := "sim: subject 137 panicked: poisoned subject model"; pe.Error() != want {
		t.Errorf("Error() = %q, want %q", pe.Error(), want)
	}
	waitGoroutines(t, baseline)
}

func TestRunPanicLowestSubjectWins(t *testing.T) {
	// Two poisoned subjects: the reported one must be the lower index at
	// every worker count, exactly like ordinary subject errors.
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		_, err := Runner{Seed: 2, N: 300, Workers: workers}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
			if i == 250 || i == 41 {
				panic(i)
			}
			return Outcome{Heeded: true}, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Subject != 41 {
			t.Errorf("workers=%d: panicked subject %d, want 41 (lowest wins)", workers, pe.Subject)
		}
	}
}

func TestRunPanicMixedWithError(t *testing.T) {
	// A panic at a lower subject index beats an error at a higher one.
	_, err := Runner{Seed: 3, N: 100, Workers: 4}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		if i == 10 {
			panic("first")
		}
		if i == 60 {
			return Outcome{}, errors.New("higher-index error")
		}
		return Outcome{Heeded: true}, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Subject != 10 {
		t.Fatalf("err = %v, want PanicError for subject 10", err)
	}
}

func TestRunTimeout(t *testing.T) {
	baseline := runtime.NumGoroutine()
	slow := func(rng *rand.Rand, i int) (Outcome, error) {
		time.Sleep(2 * time.Millisecond)
		return Outcome{Heeded: true}, nil
	}
	res, err := Runner{Seed: 4, N: 10000, Workers: 2, Timeout: 30 * time.Millisecond}.Run(context.Background(), slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Errorf("res = %+v, want nil without AllowPartial", res)
	}
	waitGoroutines(t, baseline)
}

func TestRunTimeoutPartialResult(t *testing.T) {
	slow := func(rng *rand.Rand, i int) (Outcome, error) {
		time.Sleep(2 * time.Millisecond)
		return Outcome{Heeded: i%2 == 0, FailedStage: 0}, nil
	}
	ru := Runner{Seed: 5, N: 10000, Workers: 2, Timeout: 30 * time.Millisecond, AllowPartial: true}
	res, err := ru.Run(context.Background(), slow)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded alongside the partial result", err)
	}
	if res == nil {
		t.Fatal("res = nil, want partial aggregation")
	}
	if res.Completed <= 0 || res.Completed >= res.N {
		t.Errorf("Completed = %d, want 0 < Completed < %d", res.Completed, res.N)
	}
	if res.Heed.Trials != res.Completed {
		t.Errorf("Heed.Trials = %d, want Completed = %d", res.Heed.Trials, res.Completed)
	}
	if res.N != 10000 {
		t.Errorf("N = %d, want the configured 10000", res.N)
	}
}

func TestRunCancelPartialResult(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once bool
	slow := func(rng *rand.Rand, i int) (Outcome, error) {
		if !once {
			once = true
			close(started)
		}
		time.Sleep(time.Millisecond)
		return Outcome{Heeded: true}, nil
	}
	go func() {
		<-started
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := Runner{Seed: 6, N: 100000, Workers: 1, AllowPartial: true}.Run(ctx, slow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Completed == 0 {
		t.Fatalf("res = %+v, want partial aggregation with Completed > 0", res)
	}
	if res.Completed >= res.N {
		t.Errorf("Completed = %d, want < N", res.Completed)
	}
}

func TestRunSubjectErrorFatalEvenWithAllowPartial(t *testing.T) {
	ru := Runner{Seed: 7, N: 100, Workers: 2, AllowPartial: true}
	res, err := ru.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		if i == 50 {
			return Outcome{}, errors.New("scenario bug")
		}
		return Outcome{Heeded: true}, nil
	})
	if res != nil {
		t.Errorf("res = %+v, want nil: subject errors are fatal regardless of AllowPartial", res)
	}
	if err == nil || !strings.Contains(err.Error(), "subject 50") {
		t.Errorf("err = %v, want subject 50 error", err)
	}
}

func TestRunCompletedFullRun(t *testing.T) {
	res, err := Runner{Seed: 8, N: 64}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		return Outcome{Heeded: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 64 || res.Heed.Trials != 64 {
		t.Errorf("Completed = %d, Heed.Trials = %d, want 64/64", res.Completed, res.Heed.Trials)
	}
}

func TestRunTimeoutDoesNotFirePrematurely(t *testing.T) {
	// A generous deadline must not disturb a fast run.
	res, err := Runner{Seed: 9, N: 200, Timeout: time.Minute}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		return Outcome{Heeded: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Errorf("Completed = %d, want 200", res.Completed)
	}
}
