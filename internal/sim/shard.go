package sim

import (
	"context"
	"fmt"

	"hitl/internal/agent"
	"hitl/internal/gems"
)

// Subject-range sharding: the engine's determinism contract — subject i's
// random stream is a pure function of (run seed, subject index) — means a
// run over subjects [0, N) can be split into contiguous subranges executed
// anywhere (another goroutine, another process, another machine) and merged
// back into the exact aggregate the single run would have produced. A
// shard run carries a subject offset: the engine still simulates Runner.N
// subjects, but they are global subjects [offset, offset+N), each seeded
// and fault-checked by its global index. MergeResults is the deterministic
// merge that reassembles the full-run Result from shard Results.

// subjectOffsetKey carries the shard's global subject offset through a
// context, like the injector and telemetry keys: the offset has to reach
// the Runner wherever a domain package constructs it, without every layer
// growing a parameter.
type subjectOffsetKey struct{}

// WithSubjectOffset returns a context under which every engine run
// simulates global subjects [offset, offset+N) instead of [0, N): subject
// streams, fault decisions, and trace-sampling identities all use the
// global index, so a shard run is exactly the restriction of the full run
// to that subrange. Offsets at or below zero are equivalent to not
// attaching one.
func WithSubjectOffset(ctx context.Context, offset int) context.Context {
	if offset <= 0 {
		return ctx
	}
	return context.WithValue(ctx, subjectOffsetKey{}, offset)
}

// SubjectOffsetFromContext returns the global subject offset attached to
// ctx, or 0.
func SubjectOffsetFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	off, _ := ctx.Value(subjectOffsetKey{}).(int)
	return off
}

// MergeResults merges shard Results into the aggregate of one run over
// the union of their subject ranges. It is the same fold Run's own
// aggregate step applies to its per-worker shards, so merging the Results
// of shard runs that partition [0, N) — passed in ascending subject-offset
// order — produces a Result bit-identical to the single run over [0, N):
// counters sum, and each named metric's observations concatenate in part
// order, which is global subject order exactly because each part's
// observations are already subject-ordered and the parts are disjoint
// ascending ranges.
//
// The merged N and Completed are sums over the parts; callers merging an
// incomplete cover (a failed shard under a partial-completion policy)
// should overwrite N with the full-run subject count afterwards so
// Completed < N records the gap.
func MergeResults(parts []*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sim: merging zero results")
	}
	out := &Result{
		StageFailures: make(map[agent.Stage]int),
		ErrorClasses:  make(map[gems.ErrorClass]int),
		Values:        make(map[string][]float64),
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("sim: merging nil result (part %d)", i)
		}
		out.N += p.N
		out.Completed += p.Completed
		out.Heed.Successes += p.Heed.Successes
		out.Heed.Trials += p.Heed.Trials
		out.Spoofed += p.Spoofed
		out.Heuristic += p.Heuristic
		for s, n := range p.StageFailures {
			out.StageFailures[s] += n
		}
		for c, n := range p.ErrorClasses {
			out.ErrorClasses[c] += n
		}
		for k, xs := range p.Values {
			out.Values[k] = append(out.Values[k], xs...)
		}
	}
	return out, nil
}
