package sim

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hitl/internal/agent"
)

// valueFlip heeds like coinFlip but also records per-subject metric
// observations, so merges must reproduce exact concatenation order.
func valueFlip(p float64) SubjectFunc {
	return func(rng *rand.Rand, i int) (Outcome, error) {
		out := Outcome{Values: map[string]float64{
			"score":   rng.Float64(),
			"subject": float64(i),
		}}
		if rng.Float64() < p {
			out.Heeded = true
			out.FailedStage = agent.StageNone
		} else {
			out.FailedStage = agent.StageAttentionSwitch
		}
		return out, nil
	}
}

func TestShardedRunMergesBitIdentical(t *testing.T) {
	const n = 3000
	for _, seed := range []int64{1, 99} {
		for _, shards := range []int{2, 3, 7} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				full, err := Runner{Seed: seed, N: n, Workers: 4}.Run(context.Background(), valueFlip(0.4))
				if err != nil {
					t.Fatal(err)
				}
				var parts []*Result
				for s := 0; s < shards; s++ {
					lo, hi := s*n/shards, (s+1)*n/shards
					ctx := WithSubjectOffset(context.Background(), lo)
					part, err := Runner{Seed: seed, N: hi - lo, Workers: 3}.Run(ctx, valueFlip(0.4))
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, part)
				}
				merged, err := MergeResults(parts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(full, merged) {
					t.Errorf("merged shard result differs from full run:\nfull   %+v\nmerged %+v", full, merged)
				}
			})
		}
	}
}

func TestSubjectOffsetSelectsGlobalStreams(t *testing.T) {
	// A shard at offset k must see exactly the subject indices [k, k+n)
	// with their full-run random streams — checked via the recorded
	// "subject" observations and the full run's "score" stream.
	const n, off, m = 500, 200, 100
	full, err := Runner{Seed: 7, N: n}.Run(context.Background(), valueFlip(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithSubjectOffset(context.Background(), off)
	shard, err := Runner{Seed: 7, N: m}.Run(ctx, valueFlip(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m; j++ {
		if got, want := shard.Values["subject"][j], float64(off+j); got != want {
			t.Fatalf("shard subject %d simulated global index %v, want %v", j, got, want)
		}
		if got, want := shard.Values["score"][j], full.Values["score"][off+j]; got != want {
			t.Fatalf("global subject %d: shard score %v differs from full-run score %v", off+j, got, want)
		}
	}
}

func TestSubjectOffsetFromContext(t *testing.T) {
	if got := SubjectOffsetFromContext(context.Background()); got != 0 {
		t.Errorf("bare context offset = %d, want 0", got)
	}
	if got := SubjectOffsetFromContext(WithSubjectOffset(context.Background(), -3)); got != 0 {
		t.Errorf("negative offset = %d, want 0 (no-op)", got)
	}
	if got := SubjectOffsetFromContext(WithSubjectOffset(context.Background(), 12)); got != 12 {
		t.Errorf("offset = %d, want 12", got)
	}
}

func TestMergeResultsErrors(t *testing.T) {
	if _, err := MergeResults(nil); err == nil {
		t.Error("zero parts: want error")
	}
	if _, err := MergeResults([]*Result{nil}); err == nil {
		t.Error("nil part: want error")
	}
}
