// Package sim is the Monte Carlo engine behind every experiment: it runs N
// simulated subjects through a scenario function, each with an independent,
// deterministically-derived random stream, optionally across worker
// goroutines, and aggregates outcomes into rates, stage-failure histograms,
// and named metric summaries.
//
// Determinism: subject i's stream is seeded with splitmix64(seed, i), so
// results are bit-identical for a given seed regardless of worker count or
// scheduling. Virtual time is explicit (days as float64); nothing reads the
// wall clock.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hitl/internal/agent"
	"hitl/internal/gems"
	"hitl/internal/stats"
	"hitl/internal/telemetry"
)

// Outcome is what one simulated subject produced.
type Outcome struct {
	// Heeded reports whether the subject performed the desired security
	// behavior (scenario-defined).
	Heeded bool
	// FailedStage is the framework stage at which the subject failed;
	// agent.StageNone for heeded subjects.
	FailedStage agent.Stage
	// ErrorClass is the GEMS class for behavior-stage events.
	ErrorClass gems.ErrorClass
	// Spoofed and HeuristicPath carry through the agent flags.
	Spoofed       bool
	HeuristicPath bool
	// Values holds scenario-specific named metrics (e.g. "passwords_reused").
	Values map[string]float64
	// Trace is the subject's stage-by-stage pipeline trajectory, carried
	// through from agent.Result so telemetry can sample it. Copying it is a
	// slice-header copy: the checks were already allocated by the agent.
	// Scenarios that synthesize outcomes from multiple encounters may leave
	// it nil.
	Trace []agent.Check
}

// FromAgentResult converts an agent pipeline result into an Outcome.
func FromAgentResult(r agent.Result) Outcome {
	return Outcome{
		Heeded:        r.Heeded,
		FailedStage:   r.FailedStage,
		ErrorClass:    r.ErrorClass,
		Spoofed:       r.Spoofed,
		HeuristicPath: r.HeuristicPath,
		Trace:         r.Trace,
	}
}

// subjectTrace converts a completed subject's outcome into a telemetry
// trace. Only called when a recorder is attached, so untraced runs never
// pay for the conversion.
func subjectTrace(seed int64, subject int, o Outcome) telemetry.SubjectTrace {
	st := telemetry.SubjectTrace{
		Subject:       subject,
		Seed:          seed,
		Heeded:        o.Heeded,
		HeuristicPath: o.HeuristicPath,
		Spoofed:       o.Spoofed,
	}
	if !o.Heeded {
		st.FailedStage = o.FailedStage.String()
	}
	if o.ErrorClass != gems.NoError {
		st.ErrorClass = o.ErrorClass.String()
	}
	if len(o.Trace) > 0 {
		st.Checks = make([]telemetry.StageCheck, len(o.Trace))
		for i, c := range o.Trace {
			st.Checks[i] = telemetry.StageCheck{
				Stage:  c.Stage.String(),
				P:      c.P,
				Passed: c.Passed,
				Note:   c.Note,
			}
		}
	}
	return st
}

// SubjectFunc simulates one subject. The rng is private to the subject;
// subject indexes run 0..N-1.
type SubjectFunc func(rng *rand.Rand, subject int) (Outcome, error)

// Result aggregates a run.
type Result struct {
	// N is the number of subjects the run was configured for.
	N int
	// Completed is the number of subjects actually simulated and
	// aggregated. It equals N for a run that finished; it is smaller only
	// for the partial result of a canceled or timed-out run under
	// Runner.AllowPartial. Heed.Trials always equals Completed.
	Completed int
	// Heed is the heed/compliance proportion.
	Heed stats.Proportion
	// StageFailures counts failures by framework stage.
	StageFailures map[agent.Stage]int
	// ErrorClasses counts behavior-stage GEMS classes among all subjects.
	ErrorClasses map[gems.ErrorClass]int
	// Spoofed and Heuristic count subjects with those flags.
	Spoofed   int
	Heuristic int
	// Values holds every observation of each named metric, in subject
	// order.
	Values map[string][]float64
}

// HeedRate is the fraction of subjects who heeded.
func (r *Result) HeedRate() float64 { return r.Heed.Rate() }

// FailureShare returns the fraction of *failures* attributed to the stage
// (0 if there were no failures). Failures are counted over the subjects
// that completed, so partial results stay internally consistent.
func (r *Result) FailureShare(s agent.Stage) float64 {
	failures := r.Heed.Trials - r.Heed.Successes
	if failures == 0 {
		return 0
	}
	return float64(r.StageFailures[s]) / float64(failures)
}

// TopFailureStage returns the stage with the most failures and its count.
// The boolean is false when there were no failures.
func (r *Result) TopFailureStage() (agent.Stage, int, bool) {
	best := agent.StageNone
	bestN := 0
	for _, s := range agent.Stages() {
		if n := r.StageFailures[s]; n > bestN {
			best, bestN = s, n
		}
	}
	return best, bestN, bestN > 0
}

// MeanValue returns the mean and 95% CI half-width of a named metric.
// It returns an error when the metric was never recorded.
func (r *Result) MeanValue(key string) (mean, half float64, err error) {
	xs, ok := r.Values[key]
	if !ok || len(xs) == 0 {
		return 0, 0, fmt.Errorf("sim: metric %q not recorded", key)
	}
	mean, half = stats.MeanCI(xs)
	return mean, half, nil
}

// splitmix64 derives a well-mixed per-subject seed from (seed, i).
func splitmix64(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// SubjectRand returns the deterministic random stream for subject i of a
// run seeded with seed. Exposed so scenarios can pre-sample population
// profiles consistently with Run. The stream is bit-identical to
// rand.New(rand.NewSource(splitmix64(seed, i))) but seeds about twice as
// fast (see fastSource).
func SubjectRand(seed int64, i int) *rand.Rand {
	src := &fastSource{}
	src.Seed(splitmix64(seed, i))
	return rand.New(src)
}

// EffectiveWorkers resolves a requested worker count to the parallelism a
// run will actually use: 0 (or negative) means GOMAXPROCS, and the result
// is clamped to both GOMAXPROCS and N. The GOMAXPROCS clamp matters: the
// subjects are pure CPU work, so goroutines beyond the scheduler's
// parallelism only add shard contention and context switches —
// BENCH_sim.json showed workers=4 ~19% slower than workers=1 under
// GOMAXPROCS=1 before the clamp. Run records the clamped value in its span
// and in hitl_sim_last_run_workers, and results are bit-identical at any
// requested worker count either way.
func EffectiveWorkers(workers, n int) int {
	if max := runtime.GOMAXPROCS(0); workers <= 0 || workers > max {
		workers = max
	}
	if n >= 1 && workers > n {
		workers = n
	}
	return workers
}

// Runner configures a Monte Carlo run.
type Runner struct {
	// Seed is the master seed; subject streams derive from it.
	Seed int64
	// N is the number of subjects.
	N int
	// Workers is the parallelism; 0 means GOMAXPROCS, and any request is
	// clamped to GOMAXPROCS (see EffectiveWorkers) — extra goroutines
	// cannot add parallelism, only scheduler overhead. Results are
	// deterministic regardless of Workers.
	Workers int
	// SweepWorkers is how many sweep points Sweep runs concurrently;
	// 0 or 1 means serial. Each point's subject parallelism is divided
	// down so the total number of subject goroutines stays at most the
	// resolved Workers. Points are independently seeded, so sweep results
	// are bit-identical regardless of SweepWorkers.
	SweepWorkers int
	// SweepLabeler, when non-nil, formats SweepPoint.Label during Sweep;
	// the default label is fmt.Sprintf("%g", param).
	SweepLabeler func(param float64) string
	// Timeout, when positive, bounds each Run call's wall time. An expired
	// run is canceled exactly like a caller deadline and returns an error
	// wrapping context.DeadlineExceeded (or a partial result under
	// AllowPartial). During a Sweep every point gets the full budget.
	Timeout time.Duration
	// AllowPartial opts into keeping finished work when a run is canceled
	// or times out: instead of discarding the aggregation, Run returns the
	// subjects completed so far (Result.Completed < N, Heed.Trials ==
	// Completed) alongside the cancellation error. Subject errors and
	// contained panics remain fatal regardless.
	AllowPartial bool
	// Tag, when set, is attached to the subject loop's pprof labels
	// (hitl_tag) alongside the engine path and phase, so CPU profiles can
	// attribute samples to a specific run — callers put the spec digest or
	// scenario name here. An empty Tag falls back to the tag attached to
	// the run's context (WithRunTag). It does not affect results.
	Tag string
}

type runTagKey struct{}

// WithRunTag attaches a pprof run tag to the context: every engine run
// under it labels its subject-loop CPU samples hitl_tag=tag (unless the
// Runner sets its own Tag). The scenario layer puts the canonical spec
// digest here, so profiles attribute samples to specific runs even when
// the Runner is constructed deep inside a domain package.
func WithRunTag(ctx context.Context, tag string) context.Context {
	if tag == "" {
		return ctx
	}
	return context.WithValue(ctx, runTagKey{}, tag)
}

// RunTagFromContext returns the tag attached with WithRunTag, or "".
func RunTagFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	tag, _ := ctx.Value(runTagKey{}).(string)
	return tag
}

// valueObs is one named-metric observation tagged with its subject index,
// so shard merging can restore the documented subject order of
// Result.Values.
type valueObs struct {
	subject int
	v       float64
}

// shard is one worker's partial aggregation. Workers fold each completed
// subject into their own shard, so the post-run reduce only merges
// len(workers) shards instead of walking an N-sized outcome slice.
type shard struct {
	completed     int
	heedSuccesses int
	spoofed       int
	heuristic     int
	stageFailures map[agent.Stage]int
	errorClasses  map[gems.ErrorClass]int
	values        map[string][]valueObs

	err        error
	errSubject int
}

func (sh *shard) add(subject int, o Outcome) {
	sh.completed++
	if o.Heeded {
		sh.heedSuccesses++
	} else {
		if sh.stageFailures == nil {
			sh.stageFailures = make(map[agent.Stage]int)
		}
		sh.stageFailures[o.FailedStage]++
	}
	if sh.errorClasses == nil {
		sh.errorClasses = make(map[gems.ErrorClass]int)
	}
	sh.errorClasses[o.ErrorClass]++
	if o.Spoofed {
		sh.spoofed++
	}
	if o.HeuristicPath {
		sh.heuristic++
	}
	if len(o.Values) > 0 {
		if sh.values == nil {
			sh.values = make(map[string][]valueObs)
		}
		for k, v := range o.Values {
			sh.values[k] = append(sh.values[k], valueObs{subject: subject, v: v})
		}
	}
}

// runSubject executes one subject under panic containment. A panic in the
// scenario function — or in an injected fault — is recovered into a typed
// *PanicError carrying the subject index and stack, so one poisoned
// subject fails the run instead of crashing the process. The injector, if
// any, runs Before ahead of the scenario (it may panic or sleep) and
// Perturb on a successful outcome (it may rewrite it in place).
// The deferred containPanic is a named function with pre-evaluated
// arguments — not a closure — so the defer stays open-coded and
// allocation-free on the per-subject hot path.
func (ru Runner) runSubject(f SubjectFunc, inj Injector, rng *rand.Rand, i int) (out Outcome, err error) {
	defer containPanic(i, &err)
	if inj != nil {
		inj.Before(ru.Seed, i)
	}
	out, err = f(rng, i)
	if err == nil && inj != nil {
		out = inj.Perturb(ru.Seed, i, out)
	}
	return out, err
}

// containPanic converts a recovered panic into a *PanicError through the
// caller's named error result.
func containPanic(subject int, err *error) {
	if v := recover(); v != nil {
		telemetry.RecordPanicRecovered()
		telemetry.Flight.Record(telemetry.EventPanicRecovered, "subject "+strconv.Itoa(subject))
		*err = &PanicError{Subject: subject, Value: v, Stack: debug.Stack()}
	}
}

// aggregate merges the worker shards into a Result. completed is the total
// subject count folded into the shards; for a finished run it equals ru.N.
func (ru Runner) aggregate(shards []shard, completed int) *Result {
	res := &Result{
		N:             ru.N,
		Completed:     completed,
		StageFailures: make(map[agent.Stage]int),
		ErrorClasses:  make(map[gems.ErrorClass]int),
		Values:        make(map[string][]float64),
	}
	res.Heed.Trials = completed
	mergedValues := make(map[string][]valueObs)
	for w := range shards {
		sh := &shards[w]
		res.Heed.Successes += sh.heedSuccesses
		res.Spoofed += sh.spoofed
		res.Heuristic += sh.heuristic
		for s, n := range sh.stageFailures {
			res.StageFailures[s] += n
		}
		for c, n := range sh.errorClasses {
			res.ErrorClasses[c] += n
		}
		for k, obs := range sh.values {
			mergedValues[k] = append(mergedValues[k], obs...)
		}
	}
	// Each subject contributes at most one observation per key (Values is
	// a map), so sorting by subject index restores the documented
	// subject-order guarantee exactly.
	for k, obs := range mergedValues {
		sort.Slice(obs, func(a, b int) bool { return obs[a].subject < obs[b].subject })
		xs := make([]float64, len(obs))
		for i, o := range obs {
			xs[i] = o.v
		}
		res.Values[k] = xs
	}
	return res
}

// Run executes f for every subject and aggregates the outcomes.
//
// Run honors ctx: each worker checks for cancellation before starting the
// next subject, so an in-flight run stops within one subject per worker of
// the cancel and returns ctx.Err() (use errors.Is with context.Canceled or
// context.DeadlineExceeded to distinguish abandonment from real failures).
// Runner.Timeout adds a per-run deadline with the same semantics. The first
// subject error likewise cancels the remaining work — a fatal failure does
// not let the other workers churn through all N subjects. A panicking
// subject is contained: the run fails with a *PanicError (lowest panicking
// subject wins) instead of taking the process down. Under AllowPartial a
// canceled or timed-out run returns the partial aggregation alongside the
// error instead of discarding finished work. A nil ctx is treated as
// context.Background().
//
// Fault injection: when ctx carries an Injector (WithInjector), it runs
// around every subject; injectors are deterministic in (seed, subject), so
// faulted runs keep the bit-identical-at-any-worker-count guarantee.
//
// Telemetry: when ctx carries a telemetry.Tracer, Run opens a "run" span
// with per-worker "worker-batch" children; when it carries a
// telemetry.Recorder, every completed subject's stage trajectory is offered
// to the reservoir. When it carries a *ReportCollector (WithReportCollector),
// the run appends a structured EngineReport — phase wall times, stage
// attribution, and how it ended — on every exit path. All three are read
// once per run and short-circuit to nothing when absent, and none touches
// the subject random streams: a traced or reported run returns a
// bit-identical Result to a bare one. Engine-level counters
// and histograms (subjects, stage failures, run duration, throughput) are
// always recorded; they cost a handful of atomic adds per run.
func (ru Runner) Run(ctx context.Context, f SubjectFunc) (*Result, error) {
	return ru.run(ctx, f, EngineInterpreted, newFastSource)
}

// newFastSource and newJumpSource are the per-worker stream constructors
// for the two engine paths. Both sources emit bit-identical streams to
// rand.NewSource, so the choice never changes results — only how much
// seeding work each subject pays. The interpreted path keeps the
// eagerly-seeded fastSource as the plain reference implementation; the
// compiled path uses the lazily-materialized jumpSource, whose O(1)
// reseed is the dominant share of its speedup.
func newFastSource() rand.Source64 { return &fastSource{} }
func newJumpSource() rand.Source64 { return &jumpSource{} }

// run is the engine shared by the interpreted (Run) and compiled
// (RunProgram) paths. path names the engine path for pprof labels and the
// EngineReport; newSource builds each worker's reseedable subject-stream
// generator. Scheduling, containment, and aggregation are identical for
// both paths.
func (ru Runner) run(ctx context.Context, f SubjectFunc, path string, newSource func() rand.Source64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ru.N < 1 {
		return nil, fmt.Errorf("sim: need N >= 1 subjects, got %d", ru.N)
	}
	if f == nil {
		return nil, fmt.Errorf("sim: nil subject function")
	}
	workers := EffectiveWorkers(ru.Workers, ru.N)

	spanCtx, span := telemetry.StartSpan(ctx, "run",
		telemetry.String("n", strconv.Itoa(ru.N)),
		telemetry.String("workers", strconv.Itoa(workers)),
		telemetry.String("seed", strconv.FormatInt(ru.Seed, 10)))
	defer span.End()
	rec := telemetry.RecorderFromContext(ctx)
	inj := InjectorFromContext(ctx)
	col := ReportCollectorFromContext(ctx)
	// A shard run simulates global subjects [offset, offset+N): streams,
	// fault decisions, and sampling identities all use the global index, so
	// the run is exactly the restriction of the full run to that subrange
	// (see WithSubjectOffset and MergeResults).
	offset := SubjectOffsetFromContext(ctx)
	start := time.Now()

	// deadlineCtx layers the per-run deadline (Runner.Timeout) over the
	// caller's context; runCtx additionally lets the first subject error
	// cancel the remaining work without affecting either.
	deadlineCtx := spanCtx
	if ru.Timeout > 0 {
		var cancelDeadline context.CancelFunc
		deadlineCtx, cancelDeadline = context.WithTimeout(spanCtx, ru.Timeout)
		defer cancelDeadline()
	}
	runCtx, cancel := context.WithCancel(deadlineCtx)
	defer cancel()

	shards := make([]shard, workers)
	var wg sync.WaitGroup
	// Workers claim subject indices from a shared atomic counter — the
	// cheapest work queue there is. Cancellation (caller's ctx or a fatal
	// subject error) is checked before every claim, so an aborted run stops
	// within one subject per worker.
	var nextSubject atomic.Int64
	// pprof labels attribute subject-loop CPU samples to this run's engine
	// path and tag. Label sets are per-goroutine state, so each worker
	// applies them once around its whole batch — per-run cost, not
	// per-subject.
	tag := ru.Tag
	if tag == "" {
		tag = RunTagFromContext(ctx)
	}
	labels := pprof.Labels("hitl_engine", path, "hitl_phase", "subjects", "hitl_tag", tag)
	setupEnd := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(runCtx, labels, func(context.Context) {
				telemetry.WorkerStarted()
				defer telemetry.WorkerDone()
				_, wspan := telemetry.StartSpan(runCtx, "worker-batch",
					telemetry.String("worker", strconv.Itoa(w)))
				processed := 0
				defer func() {
					wspan.SetAttr("subjects", strconv.Itoa(processed))
					wspan.End()
				}()
				sh := &shards[w]
				// One reseedable generator per worker: Seed re-derives the
				// exact stream SubjectRand would return for the subject,
				// without allocating a fresh source per subject.
				src := newSource()
				rng := rand.New(src)
				for {
					if runCtx.Err() != nil {
						return
					}
					i := int(nextSubject.Add(1)) - 1
					if i >= ru.N {
						return
					}
					// g is the subject's global index; it equals i except in
					// shard runs, where the whole range shifts by the offset.
					g := offset + i
					src.Seed(splitmix64(ru.Seed, g))
					out, err := ru.runSubject(f, inj, rng, g)
					if err != nil {
						sh.err = err
						sh.errSubject = g
						cancel() // fatal: stop the other workers promptly
						return
					}
					sh.add(g, out)
					processed++
					if rec != nil {
						// Consider defers the Outcome->SubjectTrace conversion
						// to the rare subjects that win a reservoir slot.
						rec.Consider(ru.Seed, g, func() telemetry.SubjectTrace {
							return subjectTrace(ru.Seed, g, out)
						})
					}
				}
			})
		}(w)
	}
	wg.Wait()
	computeEnd := time.Now()
	// phases is only consulted when a report collector is attached; the
	// two extra time.Now reads above are per-run, not per-subject.
	phases := PhaseTimes{
		SetupSeconds:   setupEnd.Sub(start).Seconds(),
		ComputeSeconds: computeEnd.Sub(setupEnd).Seconds(),
	}
	// Report the failure with the lowest subject index, as the old
	// subject-indexed error slice did. Contained panics arrive here as
	// *PanicError and win or lose by the same subject-order rule. Subject
	// errors are always fatal — even under AllowPartial, even if the
	// deadline also expired — because they signal a scenario bug, not an
	// abandoned run.
	var subjectErr error
	errSubject := -1
	for w := range shards {
		if sh := &shards[w]; sh.err != nil && (errSubject < 0 || sh.errSubject < errSubject) {
			subjectErr, errSubject = sh.err, sh.errSubject
		}
	}
	if subjectErr != nil {
		span.SetAttr("outcome", "error")
		var pe *PanicError
		if errors.As(subjectErr, &pe) {
			// Already self-describing (subject index and panic value); keep
			// the typed error at the top so errors.As finds it directly.
			if col != nil {
				col.add(ru.engineReport(path, workers, phases, nil, subjectErr))
			}
			return nil, subjectErr
		}
		err := fmt.Errorf("sim: subject %d: %w", errSubject, subjectErr)
		if col != nil {
			col.add(ru.engineReport(path, workers, phases, nil, err))
		}
		return nil, err
	}
	// Distinguish the remaining ways the run can end early. The caller's
	// ctx is checked first (abandonment beats everything), then the per-run
	// deadline; the internal cancel() after a subject error trips neither.
	cancelErr := ctx.Err()
	if cancelErr == nil && ru.Timeout > 0 {
		cancelErr = deadlineCtx.Err()
	}
	if cancelErr != nil {
		if !ru.AllowPartial {
			span.SetAttr("outcome", "canceled")
			if col != nil {
				col.add(ru.engineReport(path, workers, phases, nil, cancelErr))
			}
			return nil, cancelErr
		}
		completed := 0
		for w := range shards {
			completed += shards[w].completed
		}
		span.SetAttr("outcome", "partial")
		span.SetAttr("completed", strconv.Itoa(completed))
		mergeStart := time.Now()
		res := ru.aggregate(shards, completed)
		phases.MergeSeconds = time.Since(mergeStart).Seconds()
		recordRun(res, workers, time.Since(start))
		if col != nil {
			col.add(ru.engineReport(path, workers, phases, res, cancelErr))
		}
		return res, cancelErr
	}

	mergeStart := time.Now()
	res := ru.aggregate(shards, ru.N)
	phases.MergeSeconds = time.Since(mergeStart).Seconds()
	recordRun(res, workers, time.Since(start))
	if col != nil {
		col.add(ru.engineReport(path, workers, phases, res, nil))
	}
	return res, nil
}

// engineReport builds the collector entry for one finished or failed run.
// res is nil when the run produced no aggregation (fatal subject error, or
// cancellation without AllowPartial).
func (ru Runner) engineReport(path string, workers int, phases PhaseTimes, res *Result, runErr error) EngineReport {
	er := EngineReport{
		Path:             path,
		Seed:             ru.Seed,
		N:                ru.N,
		RequestedWorkers: ru.Workers,
		EffectiveWorkers: workers,
		Phases:           phases,
	}
	if res != nil {
		er.Completed = res.Completed
		er.Partial = res.Completed < res.N
		if len(res.StageFailures) > 0 {
			er.StageFailures = stageFailureNames(res)
		}
	}
	if runErr != nil {
		er.Error = runErr.Error()
		er.TimedOut = errors.Is(runErr, context.DeadlineExceeded)
		er.Canceled = errors.Is(runErr, context.Canceled)
		var pe *PanicError
		er.PanicRecovered = errors.As(runErr, &pe)
	}
	return er
}

// recordRun folds a finished (or partial) aggregation into the
// process-wide engine metrics.
func recordRun(res *Result, workers int, elapsed time.Duration) {
	telemetry.RecordRun(res.Completed, workers, elapsed, stageFailureNames(res))
}

// stageFailureNames renders the stage-failure histogram with string keys,
// the form both the engine metrics and run reports consume.
func stageFailureNames(res *Result) map[string]int {
	stageFailures := make(map[string]int, len(res.StageFailures))
	for s, n := range res.StageFailures {
		stageFailures[s.String()] = n
	}
	return stageFailures
}

// SweepPoint is one parameter setting's aggregated result.
type SweepPoint struct {
	// Param is the swept parameter value.
	Param float64
	// Label is an optional display label for the point.
	Label string
	// Result is the aggregated run at this setting.
	Result *Result
}

// Sweep runs the runner once per parameter value, building the scenario
// via build. Each point uses a distinct derived seed so points are
// independent but the whole sweep is reproducible. Point labels come from
// the runner's SweepLabeler, defaulting to fmt.Sprintf("%g", param).
// Cancellation via ctx aborts between subjects exactly as in Run; the
// error then wraps ctx.Err().
//
// When SweepWorkers > 1, up to that many points run concurrently, each
// with its subject parallelism divided down so the total goroutine count
// stays at most the resolved Workers. Because points are independently
// seeded and Run is deterministic for any worker count, the sweep result
// is bit-identical to a serial sweep; only wall-clock changes. The first
// failing point (lowest index) determines the returned error.
func (ru Runner) Sweep(ctx context.Context, params []float64, build func(param float64) SubjectFunc) ([]SweepPoint, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("sim: empty parameter sweep")
	}
	if build == nil {
		return nil, fmt.Errorf("sim: nil scenario constructor")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	points := make([]SweepPoint, len(params))
	runPoint := func(ctx context.Context, i int, workers int) error {
		p := params[i]
		sub := ru
		sub.Seed = splitmix64(ru.Seed, 1_000_003+i)
		sub.Workers = workers
		pointCtx, span := telemetry.StartSpan(ctx, "sweep-point",
			telemetry.String("param", fmt.Sprintf("%g", p)))
		res, err := sub.Run(pointCtx, build(p))
		span.End()
		if err != nil {
			return fmt.Errorf("sim: sweep point %v: %w", p, err)
		}
		label := fmt.Sprintf("%g", p)
		if ru.SweepLabeler != nil {
			label = ru.SweepLabeler(p)
		}
		points[i] = SweepPoint{Param: p, Label: label, Result: res}
		return nil
	}

	maxWorkers := EffectiveWorkers(ru.Workers, 0)
	sweepWorkers := ru.SweepWorkers
	if sweepWorkers > len(params) {
		sweepWorkers = len(params)
	}
	if sweepWorkers > maxWorkers {
		sweepWorkers = maxWorkers
	}
	if sweepWorkers <= 1 {
		for i := range params {
			if err := runPoint(ctx, i, ru.Workers); err != nil {
				return nil, err
			}
		}
		return points, nil
	}

	perPoint := maxWorkers / sweepWorkers
	sweepCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(params))
	sem := make(chan struct{}, sweepWorkers)
	var wg sync.WaitGroup
	for i := range params {
		select {
		case sem <- struct{}{}:
		case <-sweepCtx.Done():
		}
		if sweepCtx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := runPoint(sweepCtx, i, perPoint); err != nil {
				errs[i] = err
				cancel() // a failed point stops the remaining points promptly
			}
		}(i)
	}
	wg.Wait()
	// Prefer the lowest-index point that failed for a reason other than our
	// internal cancellation, mirroring the serial error order; fall back to
	// any error (e.g. the caller's ctx was canceled).
	var firstErr error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}

// SortedStages returns the stages observed in the result's failure
// histogram, in pipeline order: agent.Stages() already lists the stages in
// processing order, so filtering it preserves that order without a sort.
func (r *Result) SortedStages() []agent.Stage {
	var out []agent.Stage
	for _, s := range agent.Stages() {
		if r.StageFailures[s] > 0 {
			out = append(out, s)
		}
	}
	return out
}
