package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hitl/internal/agent"
	"hitl/internal/comms"
	"hitl/internal/gems"
	"hitl/internal/population"
	"hitl/internal/stimuli"
)

// coinFlip is a trivial scenario: heed with probability p, else fail at
// attention switch.
func coinFlip(p float64) SubjectFunc {
	return func(rng *rand.Rand, _ int) (Outcome, error) {
		if rng.Float64() < p {
			return Outcome{Heeded: true, FailedStage: agent.StageNone}, nil
		}
		return Outcome{FailedStage: agent.StageAttentionSwitch}, nil
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Runner{Seed: 1, N: 10000}.Run(context.Background(), coinFlip(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 10000 || res.Heed.Trials != 10000 {
		t.Fatalf("N bookkeeping wrong: %+v", res.Heed)
	}
	r := res.HeedRate()
	if r < 0.27 || r > 0.33 {
		t.Errorf("heed rate %v far from 0.3", r)
	}
	if res.StageFailures[agent.StageAttentionSwitch] != res.N-res.Heed.Successes {
		t.Error("failure histogram inconsistent with heed count")
	}
	if share := res.FailureShare(agent.StageAttentionSwitch); share != 1 {
		t.Errorf("all failures at attention switch: share = %v, want 1", share)
	}
	stage, n, ok := res.TopFailureStage()
	if !ok || stage != agent.StageAttentionSwitch || n == 0 {
		t.Errorf("TopFailureStage = %v, %d, %v", stage, n, ok)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		res, err := Runner{Seed: 42, N: 2000, Workers: workers}.Run(context.Background(), coinFlip(0.5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Heed != parallel.Heed {
		t.Errorf("results differ across worker counts: %+v vs %+v", serial.Heed, parallel.Heed)
	}
	if !reflect.DeepEqual(serial.StageFailures, parallel.StageFailures) {
		t.Error("stage failure histograms differ across worker counts")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := (Runner{Seed: 1, N: 0}).Run(context.Background(), coinFlip(0.5)); err == nil {
		t.Error("N=0: want error")
	}
	if _, err := (Runner{Seed: 1, N: 5}).Run(context.Background(), nil); err == nil {
		t.Error("nil func: want error")
	}
	boom := errors.New("boom")
	_, err := Runner{Seed: 1, N: 5}.Run(context.Background(), func(*rand.Rand, int) (Outcome, error) {
		return Outcome{}, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("subject error not propagated: %v", err)
	}
}

func TestValuesAggregation(t *testing.T) {
	res, err := Runner{Seed: 3, N: 100}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		return Outcome{
			Heeded:      true,
			FailedStage: agent.StageNone,
			Values:      map[string]float64{"x": float64(i % 2)},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mean, half, err := res.MeanValue("x")
	if err != nil {
		t.Fatal(err)
	}
	if mean != 0.5 {
		t.Errorf("mean = %v, want 0.5", mean)
	}
	if half <= 0 {
		t.Errorf("CI half-width = %v, want > 0", half)
	}
	if _, _, err := res.MeanValue("missing"); err == nil {
		t.Error("missing metric: want error")
	}
}

func TestFromAgentResult(t *testing.T) {
	ar := agent.Result{
		Heeded:        false,
		FailedStage:   agent.StageCapabilities,
		ErrorClass:    gems.NoError,
		Spoofed:       true,
		HeuristicPath: true,
	}
	o := FromAgentResult(ar)
	if o.Heeded || o.FailedStage != agent.StageCapabilities || !o.Spoofed || !o.HeuristicPath {
		t.Errorf("conversion lost fields: %+v", o)
	}
}

func TestSweep(t *testing.T) {
	params := []float64{0.1, 0.5, 0.9}
	points, err := Runner{Seed: 7, N: 5000}.Sweep(context.Background(), params, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for i, pt := range points {
		if pt.Param != params[i] {
			t.Errorf("point %d param = %v, want %v", i, pt.Param, params[i])
		}
		r := pt.Result.HeedRate()
		if r < pt.Param-0.05 || r > pt.Param+0.05 {
			t.Errorf("point %v heed rate %v", pt.Param, r)
		}
	}
	if _, err := (Runner{Seed: 7, N: 10}).Sweep(context.Background(), nil, func(float64) SubjectFunc { return coinFlip(0.5) }); err == nil {
		t.Error("empty sweep: want error")
	}
	if _, err := (Runner{Seed: 7, N: 10}).Sweep(context.Background(), params, nil); err == nil {
		t.Error("nil builder: want error")
	}
}

func TestSweepPointsIndependentSeeds(t *testing.T) {
	points, err := Runner{Seed: 9, N: 500}.Sweep(context.Background(), []float64{0.5, 0.5}, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Result.Heed == points[1].Result.Heed {
		t.Log("identical heed counts for identical params is possible but suspicious with different seeds")
	}
	// Re-running the whole sweep reproduces it exactly.
	again, err := Runner{Seed: 9, N: 500}.Sweep(context.Background(), []float64{0.5, 0.5}, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Result.Heed != again[i].Result.Heed {
			t.Errorf("sweep not reproducible at point %d", i)
		}
	}
}

func TestRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	_, err := Runner{Seed: 1, N: 100}.Run(ctx, func(*rand.Rand, int) (Outcome, error) {
		called = true
		return Outcome{Heeded: true}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("subject function ran under an already-canceled context")
	}
}

func TestRunCancelMidFlight(t *testing.T) {
	// A context-aware subject function: the first subject cancels the run,
	// then every subject blocks until cancellation is visible. Run must
	// return context.Canceled promptly instead of simulating all N.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var simulated atomic.Int64
	start := time.Now()
	_, err := Runner{Seed: 1, N: 1_000_000, Workers: 4}.Run(ctx, func(_ *rand.Rand, i int) (Outcome, error) {
		simulated.Add(1)
		cancel()
		<-ctx.Done()
		return Outcome{Heeded: true}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker finishes at most the subject it was on plus one more it
	// may have claimed before observing cancellation.
	if n := simulated.Load(); n > 8 {
		t.Errorf("simulated %d subjects after cancel, want <= 8", n)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", d)
	}
}

func TestSweepLabels(t *testing.T) {
	params := []float64{0.25, 0.5}
	points, err := Runner{Seed: 7, N: 50}.Sweep(context.Background(), params, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Label != "0.25" || points[1].Label != "0.5" {
		t.Errorf("default labels = %q, %q; want %%g formatting", points[0].Label, points[1].Label)
	}
	ru := Runner{Seed: 7, N: 50, SweepLabeler: func(p float64) string {
		return fmt.Sprintf("p=%.0f%%", p*100)
	}}
	points, err = ru.Sweep(context.Background(), params, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Label != "p=25%" || points[1].Label != "p=50%" {
		t.Errorf("custom labels = %q, %q", points[0].Label, points[1].Label)
	}
}

func TestSweepCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Runner{Seed: 7, N: 10}.Sweep(ctx, []float64{0.5}, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want wrapped context.Canceled", err)
	}
}

// Integration: run the agent pipeline under the sim engine.
func TestRunAgentScenario(t *testing.T) {
	spec := population.GeneralPublic()
	enc := agent.Encounter{
		Comm:          comms.FirefoxActiveWarning(),
		Env:           stimuli.Busy(),
		HazardPresent: true,
		Task:          gems.LeaveSuspiciousSite(),
	}
	res, err := Runner{Seed: 11, N: 3000}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		r := agent.NewReceiver(spec.Sample(rng))
		ar, err := r.Process(rng, enc)
		if err != nil {
			return Outcome{}, err
		}
		return FromAgentResult(ar), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.HeedRate(); rate < 0.5 {
		t.Errorf("firefox warning heed rate %v under sim engine, want >= 0.5", rate)
	}
	if len(res.SortedStages()) == 0 {
		t.Error("expected some failures across 3000 subjects")
	}
}

func TestSortedStagesOrdered(t *testing.T) {
	res, err := Runner{Seed: 13, N: 100}.Run(context.Background(), func(rng *rand.Rand, i int) (Outcome, error) {
		stages := []agent.Stage{agent.StageBehavior, agent.StageDelivery, agent.StageMotivation}
		return Outcome{FailedStage: stages[i%3]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.SortedStages()
	want := []agent.Stage{agent.StageDelivery, agent.StageMotivation, agent.StageBehavior}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedStages = %v, want %v", got, want)
	}
}

// valuesScenario emits a per-subject metric so Values ordering is
// observable: subject i records "idx" = i alongside a seeded coin flip.
func valuesScenario(rng *rand.Rand, i int) (Outcome, error) {
	out := Outcome{Values: map[string]float64{"idx": float64(i), "draw": rng.Float64()}}
	if rng.Float64() < 0.5 {
		out.Heeded = true
		out.FailedStage = agent.StageNone
	} else {
		out.FailedStage = agent.StageMotivation
	}
	return out, nil
}

// TestResultBitIdenticalAcrossWorkers locks the sharded-aggregation
// determinism contract: the full Result — including the subject order of
// every Values series — is bit-for-bit identical for any worker count.
func TestResultBitIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	results := make([]*Result, len(workerCounts))
	for wi, workers := range workerCounts {
		res, err := Runner{Seed: 1234, N: 600, Workers: workers}.Run(context.Background(), valuesScenario)
		if err != nil {
			t.Fatal(err)
		}
		results[wi] = res
	}
	// Values must come back in subject order regardless of which worker
	// ran which subject.
	for wi, res := range results {
		idx := res.Values["idx"]
		if len(idx) != 600 {
			t.Fatalf("workers=%d: %d idx observations, want 600", workerCounts[wi], len(idx))
		}
		for i, v := range idx {
			if v != float64(i) {
				t.Fatalf("workers=%d: idx[%d] = %v, want %v (subject order broken)", workerCounts[wi], i, v, i)
			}
		}
	}
	for wi := 1; wi < len(results); wi++ {
		if !reflect.DeepEqual(results[0], results[wi]) {
			t.Errorf("Result differs between workers=%d and workers=%d:\n%+v\nvs\n%+v",
				workerCounts[0], workerCounts[wi], results[0], results[wi])
		}
	}
}

// TestRunAgentBitIdenticalAcrossWorkers runs the real receiver pipeline —
// where each subject consumes a profile-dependent number of random draws —
// and requires identical Results at every worker count.
func TestRunAgentBitIdenticalAcrossWorkers(t *testing.T) {
	pop := population.GeneralPublic()
	scenario := func(rng *rand.Rand, i int) (Outcome, error) {
		r := agent.NewReceiver(pop.Sample(rng))
		ar, err := r.Process(rng, agent.Encounter{
			Comm:          comms.FirefoxActiveWarning(),
			Env:           stimuli.Busy(),
			HazardPresent: true,
			Task:          gems.LeaveSuspiciousSite(),
		})
		if err != nil {
			return Outcome{}, err
		}
		return FromAgentResult(ar), nil
	}
	var base *Result
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		res, err := Runner{Seed: 20080124, N: 400, Workers: workers}.Run(context.Background(), scenario)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("agent-pipeline Result differs at workers=%d", workers)
		}
	}
}

// TestSweepParallelMatchesSerial locks the sweep determinism contract:
// SweepWorkers > 1 must produce bit-identical points to the serial sweep,
// because every point derives its seed from the point index alone.
func TestSweepParallelMatchesSerial(t *testing.T) {
	params := []float64{0.2, 0.4, 0.6, 0.8}
	sweep := func(sweepWorkers int) []SweepPoint {
		points, err := Runner{Seed: 77, N: 800, Workers: 4, SweepWorkers: sweepWorkers}.
			Sweep(context.Background(), params, func(p float64) SubjectFunc {
				return func(rng *rand.Rand, i int) (Outcome, error) {
					out := Outcome{Values: map[string]float64{"idx": float64(i)}}
					if rng.Float64() < p {
						out.Heeded = true
						out.FailedStage = agent.StageNone
					} else {
						out.FailedStage = agent.StageAttentionSwitch
					}
					return out, nil
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial := sweep(0)
	for _, sw := range []int{2, 4, 16} {
		parallel := sweep(sw)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("SweepWorkers=%d: points differ from serial sweep", sw)
		}
	}
}

// TestSweepParallelPropagatesError checks the lowest-index real error wins
// even when later points are canceled by the sweep's internal context.
func TestSweepParallelPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Runner{Seed: 5, N: 50, SweepWorkers: 3}.
		Sweep(context.Background(), []float64{0, 1, 2}, func(p float64) SubjectFunc {
			return func(rng *rand.Rand, i int) (Outcome, error) {
				if p == 1 && i == 10 {
					return Outcome{}, boom
				}
				return Outcome{Heeded: true, FailedStage: agent.StageNone}, nil
			}
		})
	if !errors.Is(err, boom) {
		t.Errorf("parallel sweep error = %v, want boom", err)
	}
}
