package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"hitl/internal/agent"
	"hitl/internal/comms"
	"hitl/internal/gems"
	"hitl/internal/population"
	"hitl/internal/stimuli"
	"hitl/internal/telemetry"
)

// agentPipeline is the standard full-pipeline subject function used by the
// telemetry tests and benchmarks: a general-public receiver facing a
// blocking Firefox warning. It exercises the allocation-free hot path:
// receivers come from a pool and are Reset per subject, and no trace is
// collected.
func agentPipeline() SubjectFunc {
	spec := population.GeneralPublic()
	enc := agent.Encounter{
		Comm:          comms.FirefoxActiveWarning(),
		Env:           stimuli.Busy(),
		HazardPresent: true,
		Task:          gems.LeaveSuspiciousSite(),
	}
	pool := sync.Pool{New: func() any { return &agent.Receiver{} }}
	return func(rng *rand.Rand, _ int) (Outcome, error) {
		r := pool.Get().(*agent.Receiver)
		r.Reset(spec.Sample(rng))
		ar, err := r.Process(rng, enc)
		pool.Put(r)
		if err != nil {
			return Outcome{}, err
		}
		return FromAgentResult(ar), nil
	}
}

// tracedAgentPipeline is agentPipeline with per-subject trace collection
// enabled, for tests that inspect Outcome.Trace or feed a recorder.
func tracedAgentPipeline() SubjectFunc {
	spec := population.GeneralPublic()
	enc := agent.Encounter{
		Comm:          comms.FirefoxActiveWarning(),
		Env:           stimuli.Busy(),
		HazardPresent: true,
		Task:          gems.LeaveSuspiciousSite(),
	}
	pool := sync.Pool{New: func() any { return &agent.Receiver{CollectTrace: true} }}
	return func(rng *rand.Rand, _ int) (Outcome, error) {
		r := pool.Get().(*agent.Receiver)
		r.Reset(spec.Sample(rng))
		ar, err := r.Process(rng, enc)
		pool.Put(r)
		if err != nil {
			return Outcome{}, err
		}
		return FromAgentResult(ar), nil
	}
}

// TestTracingDoesNotPerturbDeterminism is the tentpole's core guarantee: a
// run with a recorder and tracer attached must return a bit-identical
// Result to the same run with telemetry disabled.
func TestTracingDoesNotPerturbDeterminism(t *testing.T) {
	runner := Runner{Seed: 20080124, N: 2000, Workers: 8}

	plain, err := runner.Run(context.Background(), agentPipeline())
	if err != nil {
		t.Fatal(err)
	}

	rec := telemetry.NewRecorder(64, 99)
	ctx := telemetry.WithRecorder(context.Background(), rec)
	ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(nil))
	traced, err := runner.Run(ctx, tracedAgentPipeline())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("traced run diverged from untraced run:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
	if got := len(rec.Traces()); got != 64 {
		t.Errorf("recorder kept %d traces, want 64", got)
	}
	if rec.Offered() != 2000 {
		t.Errorf("recorder was offered %d subjects, want 2000", rec.Offered())
	}
}

// TestTraceSampleDeterministicAcrossWorkers: the sampled subject set must
// not depend on scheduling.
func TestTraceSampleDeterministicAcrossWorkers(t *testing.T) {
	sample := func(workers int) []telemetry.SubjectTrace {
		rec := telemetry.NewRecorder(16, 7)
		ctx := telemetry.WithRecorder(context.Background(), rec)
		if _, err := (Runner{Seed: 11, N: 1000, Workers: workers}).Run(ctx, tracedAgentPipeline()); err != nil {
			t.Fatal(err)
		}
		return rec.Traces()
	}
	serial, parallel := sample(1), sample(8)
	if len(serial) != 16 {
		t.Fatalf("sampled %d traces, want 16", len(serial))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("sampled trace set depends on worker count")
	}
}

// TestSampledTraceContents: a sampled trace must answer "why did this
// subject fail": stage checks with probabilities, routing flags, and the
// failed stage.
func TestSampledTraceContents(t *testing.T) {
	rec := telemetry.NewRecorder(50, 3)
	ctx := telemetry.WithRecorder(context.Background(), rec)
	if _, err := (Runner{Seed: 5, N: 500}).Run(ctx, tracedAgentPipeline()); err != nil {
		t.Fatal(err)
	}
	traces := rec.Traces()
	if len(traces) != 50 {
		t.Fatalf("got %d traces", len(traces))
	}
	sawFailure := false
	for _, tr := range traces {
		if tr.Seed != 5 {
			t.Fatalf("trace seed = %d, want 5", tr.Seed)
		}
		if len(tr.Checks) == 0 {
			t.Fatalf("subject %d trace has no stage checks", tr.Subject)
		}
		if tr.Checks[0].Stage != agent.StageDelivery.String() {
			t.Errorf("first check = %q, want delivery", tr.Checks[0].Stage)
		}
		for _, c := range tr.Checks {
			if c.P < 0 || c.P > 1 {
				t.Errorf("check %q has probability %v outside [0,1]", c.Stage, c.P)
			}
		}
		if !tr.Heeded {
			sawFailure = true
			if tr.FailedStage == "" {
				t.Errorf("failed subject %d has empty failed_stage", tr.Subject)
			}
			last := tr.Checks[len(tr.Checks)-1]
			if last.Passed {
				t.Errorf("failed subject %d ends with a passed check", tr.Subject)
			}
		}
	}
	if !sawFailure {
		t.Error("no failures in 50 sampled subjects; sample suspiciously clean")
	}
}

// TestRunFirstErrorCancelsRemainingWork: one fatal subject error must stop
// the whole run instead of simulating all N remaining subjects.
func TestRunFirstErrorCancelsRemainingWork(t *testing.T) {
	boom := errors.New("boom")
	var simulated atomic.Int64
	const n = 100_000
	_, err := Runner{Seed: 1, N: n, Workers: 4}.Run(context.Background(),
		func(_ *rand.Rand, i int) (Outcome, error) {
			simulated.Add(1)
			if i == 0 {
				return Outcome{}, boom
			}
			return Outcome{Heeded: true}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the subject error", err)
	}
	// Workers stop at the next dequeue after the cancel; allow generous
	// scheduling slack but far below N.
	if got := simulated.Load(); got > n/10 {
		t.Errorf("simulated %d of %d subjects after a fatal error; cancellation not working", got, n)
	}
}

// TestRunSpans: spans arrive with the expected hierarchy and attributes.
func TestRunSpans(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	ctx := telemetry.WithTracer(context.Background(), tr)
	if _, err := (Runner{Seed: 2, N: 200, Workers: 4}).Run(ctx, agentPipeline()); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	var run *telemetry.SpanRecord
	workers := 0
	for i := range spans {
		switch spans[i].Name {
		case "run":
			run = &spans[i]
		case "worker-batch":
			workers++
		}
	}
	if run == nil {
		t.Fatal("no run span recorded")
	}
	// A request for 4 workers is clamped to the scheduler's parallelism;
	// the span records the count the run actually used.
	want := EffectiveWorkers(4, 200)
	if run.Attrs["n"] != "200" || run.Attrs["workers"] != strconv.Itoa(want) || run.Attrs["seed"] != "2" {
		t.Errorf("run span attrs = %v (want workers=%d)", run.Attrs, want)
	}
	if workers != want {
		t.Errorf("got %d worker-batch spans, want %d", workers, want)
	}
	for _, s := range spans {
		if s.Name == "worker-batch" && s.Parent != run.ID {
			t.Errorf("worker-batch span parented to %d, want run span %d", s.Parent, run.ID)
		}
	}
}

// TestSweepSpans: sweep points open their own spans parenting the runs.
func TestSweepSpans(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	ctx := telemetry.WithTracer(context.Background(), tr)
	_, err := (Runner{Seed: 3, N: 50}).Sweep(ctx, []float64{0.2, 0.8}, func(p float64) SubjectFunc {
		return coinFlip(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	points, runs := 0, 0
	for _, s := range tr.Spans() {
		switch s.Name {
		case "sweep-point":
			points++
		case "run":
			runs++
		}
	}
	if points != 2 || runs != 2 {
		t.Errorf("got %d sweep-point and %d run spans, want 2 and 2", points, runs)
	}
}
