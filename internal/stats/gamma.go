package stats

import (
	"errors"
	"fmt"
	"math"
)

// regularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, by series expansion (x < a+1) or continued fraction
// (x >= a+1). Standard Numerical-Recipes-style implementation, accurate to
// ~1e-12 over the ranges used here.
func regularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: invalid gamma arguments a=%v x=%v", a, x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1.0 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				lg, _ := math.Lgamma(a)
				return sum * math.Exp(-x+a*math.Log(x)-lg), nil
			}
		}
		return 0, errors.New("stats: gamma series failed to converge")
	}
	// Continued fraction for Q(a, x), then P = 1 - Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			lg, _ := math.Lgamma(a)
			q := math.Exp(-x+a*math.Log(x)-lg) * h
			return 1 - q, nil
		}
	}
	return 0, errors.New("stats: gamma continued fraction failed to converge")
}

// ChiSquarePValue returns the upper-tail p-value of a chi-square statistic
// with df degrees of freedom: P(X >= chi).
func ChiSquarePValue(chi float64, df int) (float64, error) {
	if df < 1 {
		return 0, fmt.Errorf("stats: chi-square df %d < 1", df)
	}
	if chi < 0 || math.IsNaN(chi) {
		return 0, fmt.Errorf("stats: invalid chi-square statistic %v", chi)
	}
	p, err := regularizedGammaP(float64(df)/2, chi/2)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// TwoProportionChiSquare runs a chi-square test of homogeneity on k
// binomial proportions (success/trial pairs), returning the statistic,
// degrees of freedom, and p-value. It errors when fewer than two groups
// are given or any group has zero trials.
func TwoProportionChiSquare(groups []Proportion) (chi float64, df int, p float64, err error) {
	if len(groups) < 2 {
		return 0, 0, 0, errors.New("stats: need >= 2 groups")
	}
	var totalS, totalN int
	for _, g := range groups {
		if g.Trials <= 0 {
			return 0, 0, 0, errors.New("stats: group with zero trials")
		}
		if g.Successes < 0 || g.Successes > g.Trials {
			return 0, 0, 0, fmt.Errorf("stats: invalid proportion %+v", g)
		}
		totalS += g.Successes
		totalN += g.Trials
	}
	pool := float64(totalS) / float64(totalN)
	if pool == 0 || pool == 1 {
		// No variation at all: the test statistic is 0 by convention.
		return 0, len(groups) - 1, 1, nil
	}
	for _, g := range groups {
		n := float64(g.Trials)
		expS := n * pool
		expF := n * (1 - pool)
		dS := float64(g.Successes) - expS
		dF := float64(g.Trials-g.Successes) - expF
		chi += dS*dS/expS + dF*dF/expF
	}
	df = len(groups) - 1
	p, err = ChiSquarePValue(chi, df)
	if err != nil {
		return 0, 0, 0, err
	}
	return chi, df, p, nil
}
