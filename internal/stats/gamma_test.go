package stats

import (
	"math"
	"testing"
)

func TestChiSquarePValueKnownValues(t *testing.T) {
	cases := []struct {
		chi  float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 1e-3},    // classic 95% critical value, df=1
		{5.991, 2, 0.05, 1e-3},    // df=2
		{10.0, 2, 0.006738, 1e-5}, // exp(-5)
		{0, 1, 1.0, 1e-12},
		{2.706, 1, 0.10, 1e-3},
		{23.685, 14, 0.05, 1e-3},
	}
	for _, c := range cases {
		got, err := ChiSquarePValue(c.chi, c.df)
		if err != nil {
			t.Fatalf("chi=%v df=%d: %v", c.chi, c.df, err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("ChiSquarePValue(%v, %d) = %v, want %v", c.chi, c.df, got, c.want)
		}
	}
}

func TestChiSquarePValueErrors(t *testing.T) {
	if _, err := ChiSquarePValue(1, 0); err == nil {
		t.Error("df=0: want error")
	}
	if _, err := ChiSquarePValue(-1, 1); err == nil {
		t.Error("negative statistic: want error")
	}
	if _, err := ChiSquarePValue(math.NaN(), 1); err == nil {
		t.Error("NaN statistic: want error")
	}
}

func TestChiSquarePValueMonotone(t *testing.T) {
	prev := 1.1
	for chi := 0.0; chi <= 30; chi += 0.5 {
		p, err := ChiSquarePValue(chi, 3)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev {
			t.Fatalf("p-value must fall as chi grows: chi=%v p=%v prev=%v", chi, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value %v out of [0,1]", p)
		}
		prev = p
	}
}

func TestTwoProportionChiSquare(t *testing.T) {
	// Identical groups: statistic ~0, p ~1.
	chi, df, p, err := TwoProportionChiSquare([]Proportion{
		{Successes: 50, Trials: 100},
		{Successes: 50, Trials: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if chi > 1e-9 || df != 1 || p < 0.99 {
		t.Errorf("identical groups: chi=%v df=%d p=%v", chi, df, p)
	}
	// Wildly different groups: tiny p.
	_, _, p, err = TwoProportionChiSquare([]Proportion{
		{Successes: 90, Trials: 100},
		{Successes: 10, Trials: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("p = %v for a 90%% vs 10%% split, want tiny", p)
	}
	// Textbook 2x2 check: 30/100 vs 45/100 gives chi ≈ 4.8, p ≈ 0.028.
	chi, _, p, err = TwoProportionChiSquare([]Proportion{
		{Successes: 30, Trials: 100},
		{Successes: 45, Trials: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(chi-4.8) > 0.01 {
		t.Errorf("chi = %v, want ~4.8", chi)
	}
	if math.Abs(p-0.0285) > 0.002 {
		t.Errorf("p = %v, want ~0.0285", p)
	}
}

func TestTwoProportionChiSquareEdge(t *testing.T) {
	if _, _, _, err := TwoProportionChiSquare([]Proportion{{Successes: 1, Trials: 2}}); err == nil {
		t.Error("single group: want error")
	}
	if _, _, _, err := TwoProportionChiSquare([]Proportion{{Successes: 1, Trials: 0}, {Successes: 1, Trials: 2}}); err == nil {
		t.Error("zero trials: want error")
	}
	if _, _, _, err := TwoProportionChiSquare([]Proportion{{Successes: 5, Trials: 2}, {Successes: 1, Trials: 2}}); err == nil {
		t.Error("successes > trials: want error")
	}
	// All-success groups: no variation, p = 1 by convention.
	_, _, p, err := TwoProportionChiSquare([]Proportion{
		{Successes: 10, Trials: 10}, {Successes: 20, Trials: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("no-variation p = %v, want 1", p)
	}
}
