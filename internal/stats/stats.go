// Package stats provides the small statistical toolkit used by the hitl
// simulator and experiment harness: summary statistics, binomial confidence
// intervals, histograms, Shannon entropy, chi-square goodness of fit, and
// simple linear trend fitting.
//
// Everything in this package is deterministic; random sampling lives in the
// callers (internal/sim, internal/population) so that experiments remain
// reproducible for a given seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when xs has fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, or 0 if xs is empty.
// xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error if xs is empty
// or q is out of range.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Proportion is an observed binomial proportion: Successes out of Trials.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the point estimate Successes/Trials, or 0 for zero trials.
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// z95 is the two-sided 95% normal critical value.
const z95 = 1.959963984540054

// WilsonCI returns the 95% Wilson score interval for the proportion.
// The Wilson interval behaves sensibly near 0 and 1 and for small n,
// which matters for rare failure modes in small simulated populations.
func (p Proportion) WilsonCI() (lo, hi float64) {
	n := float64(p.Trials)
	if n == 0 {
		return 0, 1
	}
	phat := p.Rate()
	z := z95
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String formats the proportion as "p [lo, hi] (k/n)".
func (p Proportion) String() string {
	lo, hi := p.WilsonCI()
	return fmt.Sprintf("%.3f [%.3f, %.3f] (%d/%d)", p.Rate(), lo, hi, p.Successes, p.Trials)
}

// MeanCI returns the mean of xs and the half-width of its 95% normal
// confidence interval. The half-width is 0 when xs has fewer than two
// elements.
func MeanCI(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, z95 * se
}

// Histogram counts observations into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with n equal-width bins spanning
// [min, max]. It returns an error if n < 1 or min >= max.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}, nil
}

// Add records one observation. Values outside [Min, Max] are clamped into
// the first or last bin so that totals remain conserved.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Min) / (h.Max - h.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fractions returns the per-bin fraction of all observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Entropy returns the Shannon entropy, in bits, of a discrete distribution
// given as nonnegative weights (they need not sum to 1; they are
// normalized). Zero weights contribute nothing. It returns an error when all
// weights are zero or any weight is negative.
func Entropy(weights []float64) (float64, error) {
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: negative or NaN weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return 0, ErrEmpty
	}
	var h float64
	for _, w := range weights {
		// p can be 0 even for w > 0 when sum overflowed to +Inf.
		p := w / sum
		if p <= 0 {
			continue
		}
		h -= p * math.Log2(p)
	}
	return h, nil
}

// GuessEntropy returns the expected number of sequential guesses, E[G],
// needed to find a value drawn from the distribution when the attacker
// guesses outcomes in decreasing-probability order (Massey's guessing
// entropy, in guesses rather than bits). Weights are normalized as in
// Entropy.
func GuessEntropy(weights []float64) (float64, error) {
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: negative or NaN weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	var g float64
	for i, w := range cp {
		g += float64(i+1) * (w / sum)
	}
	return g, nil
}

// AlphaWorkFactor returns the minimum number of highest-probability guesses
// an attacker must try to succeed with probability at least alpha
// (the alpha-work-factor of Pliam). It returns an error for alpha outside
// (0, 1] or an empty/zero distribution.
func AlphaWorkFactor(weights []float64, alpha float64) (int, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return 0, fmt.Errorf("stats: alpha %v out of (0,1]", alpha)
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: negative or NaN weight %v", w)
		}
		sum += w
	}
	if sum == 0 {
		return 0, ErrEmpty
	}
	cp := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(cp)))
	var acc float64
	for i, w := range cp {
		acc += w / sum
		if acc >= alpha-1e-12 {
			return i + 1, nil
		}
	}
	return len(cp), nil
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected proportions (normalized). It returns an error if the slices
// differ in length, are empty, or expected mass is zero where observations
// exist.
func ChiSquare(observed []int, expected []float64) (float64, error) {
	if len(observed) != len(expected) {
		return 0, fmt.Errorf("stats: chi-square length mismatch %d vs %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return 0, ErrEmpty
	}
	var n int
	for _, o := range observed {
		if o < 0 {
			return 0, fmt.Errorf("stats: negative observed count %d", o)
		}
		n += o
	}
	var esum float64
	for _, e := range expected {
		if e < 0 || math.IsNaN(e) {
			return 0, fmt.Errorf("stats: negative or NaN expected weight %v", e)
		}
		esum += e
	}
	if esum == 0 {
		return 0, errors.New("stats: zero expected mass")
	}
	var chi float64
	for i, o := range observed {
		exp := expected[i] / esum * float64(n)
		if exp == 0 {
			if o != 0 {
				return 0, fmt.Errorf("stats: bin %d has observations but zero expectation", i)
			}
			continue
		}
		d := float64(o) - exp
		chi += d * d / exp
	}
	return chi, nil
}

// LinearTrend fits y = a + b*x by least squares and returns the intercept a
// and slope b. It returns an error when fewer than two points are given or
// all x are identical.
func LinearTrend(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("stats: trend length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Clamp01 bounds x into [0, 1]. NaN clamps to 0.
func Clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Logit returns log(p/(1-p)) with p clamped away from 0 and 1 so the result
// is always finite.
func Logit(p float64) float64 {
	const eps = 1e-9
	p = Clamp01(p)
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p / (1 - p))
}

// Sigmoid is the logistic function, the inverse of Logit.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
