package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("%s: Mean(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	in := []float64{9, 1, 5}
	_ = Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile on empty data: want error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile out of range: want error")
	}
}

func TestProportionRate(t *testing.T) {
	p := Proportion{Successes: 3, Trials: 4}
	if got := p.Rate(); got != 0.75 {
		t.Errorf("Rate = %v, want 0.75", got)
	}
	if got := (Proportion{}).Rate(); got != 0 {
		t.Errorf("empty Rate = %v, want 0", got)
	}
}

func TestWilsonCIProperties(t *testing.T) {
	f := func(succ uint16, extra uint16) bool {
		n := int(succ) + int(extra)
		if n == 0 {
			return true
		}
		p := Proportion{Successes: int(succ), Trials: n}
		lo, hi := p.WilsonCI()
		r := p.Rate()
		return lo >= 0 && hi <= 1 && lo <= r+1e-12 && hi >= r-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWilsonCINarrowsWithN(t *testing.T) {
	small := Proportion{Successes: 5, Trials: 10}
	big := Proportion{Successes: 500, Trials: 1000}
	slo, shi := small.WilsonCI()
	blo, bhi := big.WilsonCI()
	if bhi-blo >= shi-slo {
		t.Errorf("CI should narrow with n: small width %v, big width %v", shi-slo, bhi-blo)
	}
}

func TestWilsonCICoverage(t *testing.T) {
	// Simulated coverage of the 95% interval should be near 95%.
	rng := rand.New(rand.NewSource(7))
	const trueP = 0.3
	const reps = 2000
	const n = 50
	covered := 0
	for r := 0; r < reps; r++ {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < trueP {
				k++
			}
		}
		lo, hi := (Proportion{Successes: k, Trials: n}).WilsonCI()
		if lo <= trueP && trueP <= hi {
			covered++
		}
	}
	cov := float64(covered) / reps
	if cov < 0.90 || cov > 0.99 {
		t.Errorf("Wilson CI coverage = %v, want near 0.95", cov)
	}
}

func TestMeanCI(t *testing.T) {
	m, h := MeanCI([]float64{1, 2, 3, 4, 5})
	if m != 3 {
		t.Errorf("mean = %v, want 3", m)
	}
	if h <= 0 {
		t.Errorf("half-width = %v, want > 0", h)
	}
	if _, h := MeanCI([]float64{1}); h != 0 {
		t.Errorf("singleton half-width = %v, want 0", h)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// -1, 0, 1.9 in bin 0; 2 in bin 1; 9.9, 10, 11 in bin 4.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins: want error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range: want error")
	}
}

func TestEntropy(t *testing.T) {
	h, err := Entropy([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, 2, 1e-12) {
		t.Errorf("uniform-4 entropy = %v, want 2 bits", h)
	}
	h, err = Entropy([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("point-mass entropy = %v, want 0", h)
	}
	if _, err := Entropy([]float64{0, 0}); err == nil {
		t.Error("all-zero weights: want error")
	}
	if _, err := Entropy([]float64{-1, 2}); err == nil {
		t.Error("negative weight: want error")
	}
}

func TestEntropyBounds(t *testing.T) {
	f := func(raw []float64) bool {
		ws := make([]float64, 0, len(raw))
		for _, r := range raw {
			ws = append(ws, math.Abs(r))
		}
		h, err := Entropy(ws)
		if err != nil {
			return true // empty or zero-mass inputs are rejected, fine
		}
		return h >= 0 && h <= math.Log2(float64(len(ws)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuessEntropy(t *testing.T) {
	// Uniform over 4: E[G] = (1+2+3+4)/4 = 2.5.
	g, err := GuessEntropy([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, 2.5, 1e-12) {
		t.Errorf("uniform-4 guess entropy = %v, want 2.5", g)
	}
	// Skewed distribution takes fewer guesses than uniform.
	gskew, err := GuessEntropy([]float64{0.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if gskew >= g {
		t.Errorf("skewed guess entropy %v should be < uniform %v", gskew, g)
	}
}

func TestGuessEntropySkewNeverWorse(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		for i, r := range raw {
			ws[i] = math.Abs(r)
		}
		g, err := GuessEntropy(ws)
		if err != nil {
			return true
		}
		uniform := make([]float64, len(ws))
		for i := range uniform {
			uniform[i] = 1
		}
		gu, err := GuessEntropy(uniform)
		if err != nil {
			return true
		}
		return g <= gu+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphaWorkFactor(t *testing.T) {
	ws := []float64{0.5, 0.3, 0.1, 0.1}
	for _, c := range []struct {
		alpha float64
		want  int
	}{
		{0.5, 1}, {0.8, 2}, {0.9, 3}, {1.0, 4},
	} {
		got, err := AlphaWorkFactor(ws, c.alpha)
		if err != nil {
			t.Fatalf("alpha %v: %v", c.alpha, err)
		}
		if got != c.want {
			t.Errorf("AlphaWorkFactor(%v) = %d, want %d", c.alpha, got, c.want)
		}
	}
	if _, err := AlphaWorkFactor(ws, 0); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := AlphaWorkFactor(ws, 1.5); err == nil {
		t.Error("alpha>1: want error")
	}
	if _, err := AlphaWorkFactor(nil, 0.5); err == nil {
		t.Error("empty weights: want error")
	}
}

func TestChiSquare(t *testing.T) {
	// Perfect match gives 0.
	chi, err := ChiSquare([]int{25, 25, 25, 25}, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if chi != 0 {
		t.Errorf("chi-square of perfect fit = %v, want 0", chi)
	}
	// Known value: observed {10, 20, 30}, expected uniform (20 each):
	// (100 + 0 + 100)/20 = 10.
	chi, err = ChiSquare([]int{10, 20, 30}, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(chi, 10, 1e-12) {
		t.Errorf("chi-square = %v, want 10", chi)
	}
	if _, err := ChiSquare([]int{1}, []float64{1, 1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := ChiSquare([]int{1, 1}, []float64{0, 0}); err == nil {
		t.Error("zero expected mass: want error")
	}
	if _, err := ChiSquare([]int{1, 0}, []float64{0, 1}); err == nil {
		t.Error("observation in zero-expectation bin: want error")
	}
}

func TestLinearTrend(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, err := LinearTrend(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Errorf("trend = (%v, %v), want (1, 2)", a, b)
	}
	if _, _, err := LinearTrend([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x: want error")
	}
	if _, _, err := LinearTrend([]float64{1}, []float64{1}); err == nil {
		t.Error("too few points: want error")
	}
}

func TestClamp01(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {math.NaN(), 0},
	} {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLogitSigmoidRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		got := Sigmoid(Logit(p))
		return almostEqual(got, p, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !math.IsInf(Logit(0), -1) == false && false {
		t.Error("unreachable")
	}
	// Extremes stay finite.
	if math.IsInf(Logit(0), 0) || math.IsInf(Logit(1), 0) {
		t.Error("Logit must stay finite at 0 and 1")
	}
}
