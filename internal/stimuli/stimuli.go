// Package stimuli models communication impediments (§2.2 of the framework):
// environmental stimuli that compete for the receiver's attention, and
// interference — anything that prevents a communication from being received
// as the sender intended, whether a malicious attacker, a technology
// failure, or environmental masking.
package stimuli

import (
	"fmt"
	"math"
)

// Environment describes the ambient conditions and competing demands
// surrounding a communication delivery. All float fields are in [0, 1].
type Environment struct {
	// Distraction is the ambient level of unrelated activity — noise,
	// light, conversation, other applications.
	Distraction float64
	// PrimaryTaskPressure is how absorbed the user is in the primary task
	// the communication would interrupt (deadline pressure, flow).
	PrimaryTaskPressure float64
	// CompetingIndicators counts other security indicators visible at the
	// same time (cluttered browser chrome dilutes attention, §2.2).
	CompetingIndicators int
	// NoiseMasking is ambient noise specifically masking audio channels.
	NoiseMasking float64
}

// Validate checks field ranges.
func (e Environment) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Distraction", e.Distraction},
		{"PrimaryTaskPressure", e.PrimaryTaskPressure},
		{"NoiseMasking", e.NoiseMasking},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("stimuli: %s = %v out of [0,1]", f.name, f.v)
		}
	}
	if e.CompetingIndicators < 0 {
		return fmt.Errorf("stimuli: CompetingIndicators = %d negative", e.CompetingIndicators)
	}
	return nil
}

// AttentionLoad aggregates the environment into a single attention-
// competition factor in [0, 1): how much of the receiver's attention budget
// is already claimed before the communication arrives.
func (e Environment) AttentionLoad() float64 {
	// Each competing indicator adds diminishing clutter.
	clutter := 1 - math.Pow(0.85, float64(e.CompetingIndicators))
	load := 0.45*e.Distraction + 0.4*e.PrimaryTaskPressure + 0.15*clutter
	if load > 0.99 {
		load = 0.99
	}
	if load < 0 {
		load = 0
	}
	return load
}

// Quiet returns a benign environment: a user at a desk with no unusual
// distraction and a light primary task.
func Quiet() Environment {
	return Environment{Distraction: 0.2, PrimaryTaskPressure: 0.3}
}

// Busy returns a high-pressure environment: heavy distraction and an
// absorbing primary task, as in the phishing studies where participants had
// a shopping or email-triage task.
func Busy() Environment {
	return Environment{Distraction: 0.5, PrimaryTaskPressure: 0.8, CompetingIndicators: 3}
}

// InterferenceKind classifies what disrupts the communication (§2.2).
type InterferenceKind int

// The interference kinds the framework calls out.
const (
	// None: the communication is delivered as intended.
	None InterferenceKind = iota
	// Block: the communication never reaches the receiver (attacker
	// suppresses it, or a technology failure drops it).
	Block
	// Spoof: an attacker substitutes or forges the indicator, deceiving the
	// receiver into trusting attacker-controlled content (e.g. fake SSL
	// lock icons, Ye et al.).
	Spoof
	// Obscure: the communication is partially masked — overlapping windows,
	// ambient noise over an audio alert, look-alike page furniture.
	Obscure
	// Delay: the communication arrives late relative to the hazard window.
	Delay
	// TechFailure: a non-malicious failure corrupts or suppresses delivery
	// (blocklist not loaded, network outage, crashed extension).
	TechFailure
)

// String returns the interference kind name.
func (k InterferenceKind) String() string {
	switch k {
	case None:
		return "none"
	case Block:
		return "block"
	case Spoof:
		return "spoof"
	case Obscure:
		return "obscure"
	case Delay:
		return "delay"
	case TechFailure:
		return "tech-failure"
	default:
		return fmt.Sprintf("InterferenceKind(%d)", int(k))
	}
}

// Malicious reports whether the interference kind implies an active
// attacker (as opposed to benign failure or environment).
func (k InterferenceKind) Malicious() bool {
	return k == Block || k == Spoof || k == Obscure
}

// Interference is a concrete interference event applied to a delivery.
type Interference struct {
	Kind InterferenceKind
	// Strength in [0, 1]: 1 means total (a fully blocked or perfectly
	// spoofed communication), lower values partial.
	Strength float64
	// Description is optional, for traces and reports.
	Description string
}

// Validate checks ranges.
func (i Interference) Validate() error {
	if i.Kind < None || i.Kind > TechFailure {
		return fmt.Errorf("stimuli: invalid interference kind %d", int(i.Kind))
	}
	if i.Strength < 0 || i.Strength > 1 || math.IsNaN(i.Strength) {
		return fmt.Errorf("stimuli: interference strength %v out of [0,1]", i.Strength)
	}
	return nil
}

// Effect is how an interference modifies a delivery.
type Effect struct {
	// DeliveredFraction is the fraction of the communication's salience and
	// content that survives (0 = never arrives).
	DeliveredFraction float64
	// Spoofed reports whether what the receiver perceives is attacker-
	// controlled rather than genuine.
	Spoofed bool
	// AddedDelaySeconds is extra latency introduced before delivery.
	AddedDelaySeconds float64
}

// Apply computes the delivery effect of the interference. A None
// interference passes the communication through intact.
func (i Interference) Apply() Effect {
	switch i.Kind {
	case None:
		return Effect{DeliveredFraction: 1}
	case Block:
		return Effect{DeliveredFraction: 1 - i.Strength}
	case Spoof:
		// The genuine communication is fully replaced at strength 1; at
		// lower strengths the receiver may notice inconsistencies.
		return Effect{DeliveredFraction: 1, Spoofed: i.Strength >= 0.5}
	case Obscure:
		return Effect{DeliveredFraction: 1 - 0.8*i.Strength}
	case Delay:
		return Effect{DeliveredFraction: 1, AddedDelaySeconds: 30 * i.Strength}
	case TechFailure:
		return Effect{DeliveredFraction: 1 - i.Strength}
	default:
		return Effect{DeliveredFraction: 1}
	}
}
