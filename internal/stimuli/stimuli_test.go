package stimuli

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEnvironmentValidate(t *testing.T) {
	if err := Quiet().Validate(); err != nil {
		t.Errorf("Quiet invalid: %v", err)
	}
	if err := Busy().Validate(); err != nil {
		t.Errorf("Busy invalid: %v", err)
	}
	bad := []Environment{
		{Distraction: -0.1},
		{PrimaryTaskPressure: 1.5},
		{NoiseMasking: math.NaN()},
		{CompetingIndicators: -1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, e)
		}
	}
}

func TestAttentionLoadBounds(t *testing.T) {
	f := func(d, p float64, n uint8) bool {
		e := Environment{
			Distraction:         math.Abs(math.Mod(d, 1)),
			PrimaryTaskPressure: math.Abs(math.Mod(p, 1)),
			CompetingIndicators: int(n % 20),
		}
		load := e.AttentionLoad()
		return load >= 0 && load < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttentionLoadMonotonic(t *testing.T) {
	base := Environment{Distraction: 0.3, PrimaryTaskPressure: 0.3}
	busier := base
	busier.Distraction = 0.8
	if busier.AttentionLoad() <= base.AttentionLoad() {
		t.Error("more distraction must raise attention load")
	}
	cluttered := base
	cluttered.CompetingIndicators = 8
	if cluttered.AttentionLoad() <= base.AttentionLoad() {
		t.Error("more competing indicators must raise attention load")
	}
	if Busy().AttentionLoad() <= Quiet().AttentionLoad() {
		t.Error("Busy must load attention more than Quiet")
	}
}

func TestCompetingIndicatorsDiminishing(t *testing.T) {
	load := func(n int) float64 {
		return Environment{CompetingIndicators: n}.AttentionLoad()
	}
	d1 := load(1) - load(0)
	d10 := load(10) - load(9)
	if d10 >= d1 {
		t.Errorf("indicator clutter should have diminishing increments: first %v, tenth %v", d1, d10)
	}
}

func TestInterferenceKindString(t *testing.T) {
	kinds := []InterferenceKind{None, Block, Spoof, Obscure, Delay, TechFailure}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "InterferenceKind(") {
			t.Errorf("kind %d missing name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if s := InterferenceKind(42).String(); s != "InterferenceKind(42)" {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestMalicious(t *testing.T) {
	for k, want := range map[InterferenceKind]bool{
		None: false, Block: true, Spoof: true, Obscure: true,
		Delay: false, TechFailure: false,
	} {
		if got := k.Malicious(); got != want {
			t.Errorf("%v.Malicious() = %v, want %v", k, got, want)
		}
	}
}

func TestInterferenceValidate(t *testing.T) {
	if err := (Interference{Kind: Spoof, Strength: 0.7}).Validate(); err != nil {
		t.Errorf("valid interference rejected: %v", err)
	}
	if err := (Interference{Kind: InterferenceKind(9)}).Validate(); err == nil {
		t.Error("invalid kind: want error")
	}
	if err := (Interference{Kind: Block, Strength: 1.5}).Validate(); err == nil {
		t.Error("invalid strength: want error")
	}
}

func TestApplyNone(t *testing.T) {
	e := Interference{Kind: None}.Apply()
	if e.DeliveredFraction != 1 || e.Spoofed || e.AddedDelaySeconds != 0 {
		t.Errorf("None must pass through intact, got %+v", e)
	}
}

func TestApplyBlock(t *testing.T) {
	e := Interference{Kind: Block, Strength: 1}.Apply()
	if e.DeliveredFraction != 0 {
		t.Errorf("full block: delivered = %v, want 0", e.DeliveredFraction)
	}
	e = Interference{Kind: Block, Strength: 0.5}.Apply()
	if e.DeliveredFraction != 0.5 {
		t.Errorf("half block: delivered = %v, want 0.5", e.DeliveredFraction)
	}
}

func TestApplySpoof(t *testing.T) {
	if !(Interference{Kind: Spoof, Strength: 0.9}).Apply().Spoofed {
		t.Error("strong spoof must mark Spoofed")
	}
	if (Interference{Kind: Spoof, Strength: 0.2}).Apply().Spoofed {
		t.Error("weak spoof must not fully deceive")
	}
}

func TestApplyObscureAndDelay(t *testing.T) {
	ob := Interference{Kind: Obscure, Strength: 1}.Apply()
	if ob.DeliveredFraction >= 0.5 {
		t.Errorf("full obscure should strongly reduce delivery, got %v", ob.DeliveredFraction)
	}
	if ob.DeliveredFraction <= 0 {
		t.Error("obscure should not fully block")
	}
	dl := Interference{Kind: Delay, Strength: 0.5}.Apply()
	if dl.AddedDelaySeconds <= 0 || dl.DeliveredFraction != 1 {
		t.Errorf("delay should add latency without dropping content, got %+v", dl)
	}
}

// Property: DeliveredFraction stays in [0,1] for all kinds and strengths.
func TestApplyBounds(t *testing.T) {
	f := func(kindRaw uint8, strength float64) bool {
		i := Interference{
			Kind:     InterferenceKind(kindRaw % 6),
			Strength: math.Abs(math.Mod(strength, 1)),
		}
		e := i.Apply()
		return e.DeliveredFraction >= 0 && e.DeliveredFraction <= 1 &&
			e.AddedDelaySeconds >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
