// Package store is a disk-persistent, content-addressed result store: it
// maps a canonical spec digest (the same sha256 the server's result cache
// keys on) to the rendered result body computed for that spec, so completed
// work survives process restarts and a repeated spec is served from disk at
// cache speed instead of re-running the Monte Carlo engine.
//
// Layout: one file per entry under dir/<digest[:2]>/<digest>, fanned out by
// the first digest byte so no single directory grows unboundedly. Each file
// is a one-line JSON meta header (body checksum, length, creation time)
// followed by the raw body bytes. Writes go to a temp file in the same
// directory, are fsynced, and are renamed into place — readers never see a
// partial entry, and concurrent writers of the same key are idempotent
// (the body is a pure function of the key, so last-rename-wins is
// harmless). Reads verify length and checksum; a corrupt entry is deleted
// and reported as ErrCorrupt so callers fall back to recompute.
//
// The store itself is the cold tier. Callers are expected to front it with
// an in-memory LRU (the server uses its result cache) and to use Meta.ETag
// for HTTP conditional requests: the ETag is the hex sha256 of the body,
// so it is stable across restarts and across replicas that computed the
// same spec.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"hitl/internal/telemetry"
)

// ErrNotFound reports a key with no stored entry.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt reports an entry whose on-disk bytes failed the integrity
// check; the entry has already been removed by the time Get returns it.
var ErrCorrupt = errors.New("store: corrupt entry")

// Meta describes a stored entry.
type Meta struct {
	// Key is the content address (the canonical spec digest).
	Key string `json:"key"`
	// SHA256 is the hex checksum of the body; it doubles as the HTTP ETag
	// (quoted) for conditional reads.
	SHA256 string `json:"sha256"`
	// Size is the body length in bytes.
	Size int64 `json:"size"`
	// CreatedAt is when the entry was written (wall clock, informational).
	CreatedAt time.Time `json:"created_at"`
}

// ETag is the entry's strong HTTP entity tag: the quoted body checksum.
func (m Meta) ETag() string { return `"` + m.SHA256 + `"` }

// Store is a content-addressed file store rooted at one directory. All
// methods are safe for concurrent use; cross-process sharing is safe too
// because entries are immutable once renamed into place.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	corrupt atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validKey constrains keys to lowercase-hex digests. This is a safety
// property, not pedantry: the key becomes a file path, so anything outside
// hex (separators, dots) could escape the store directory.
func validKey(key string) error {
	if len(key) < 8 || len(key) > 128 {
		return fmt.Errorf("store: key length %d outside [8, 128]", len(key))
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// path returns the entry file for a validated key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Put stores body under key atomically: the entry is written to a temp
// file in the target directory, fsynced, and renamed into place. An
// existing entry is replaced (the body is content-addressed by the key, so
// a replacement is byte-identical in practice).
func (s *Store) Put(key string, body []byte) (Meta, error) {
	if err := validKey(key); err != nil {
		return Meta{}, err
	}
	sum := sha256.Sum256(body)
	meta := Meta{
		Key:       key,
		SHA256:    hex.EncodeToString(sum[:]),
		Size:      int64(len(body)),
		CreatedAt: time.Now().UTC(),
	}
	header, err := json.Marshal(meta)
	if err != nil {
		return Meta{}, fmt.Errorf("store: encoding meta: %w", err)
	}

	final := s.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return Meta{}, fmt.Errorf("store: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-"+key[:8]+"-*")
	if err != nil {
		return Meta{}, fmt.Errorf("store: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	if _, err := w.Write(append(header, '\n')); err == nil {
		_, err = w.Write(body)
		if err == nil {
			err = w.Flush()
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return Meta{}, fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return Meta{}, fmt.Errorf("store: publishing %s: %w", key, err)
	}
	s.writes.Add(1)
	return meta, nil
}

// Get returns the stored body and meta for key. A missing entry reports
// ErrNotFound; an entry whose bytes fail the length or checksum test is
// deleted and reported as ErrCorrupt (both testable with errors.Is), so
// the caller can fall through to recompute.
func (s *Store) Get(key string) ([]byte, Meta, error) {
	if err := validKey(key); err != nil {
		return nil, Meta{}, err
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, Meta{}, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, Meta{}, fmt.Errorf("store: reading %s: %w", key, err)
	}
	meta, body, err := decodeEntry(key, raw)
	if err != nil {
		// Quarantine by deletion: a corrupt entry must not be served, and
		// leaving it would fail every future read the same way.
		_ = os.Remove(s.path(key))
		s.corrupt.Add(1)
		telemetry.Flight.Record(telemetry.EventStoreQuarantine, key+": "+err.Error())
		return nil, Meta{}, err
	}
	s.hits.Add(1)
	return body, meta, nil
}

// decodeEntry splits and verifies one entry file's bytes.
func decodeEntry(key string, raw []byte) (Meta, []byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return Meta{}, nil, fmt.Errorf("%w: %s: missing meta header", ErrCorrupt, key)
	}
	var meta Meta
	if err := json.Unmarshal(raw[:nl], &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("%w: %s: bad meta header: %v", ErrCorrupt, key, err)
	}
	body := raw[nl+1:]
	if meta.Key != key {
		return Meta{}, nil, fmt.Errorf("%w: %s: header names key %s", ErrCorrupt, key, meta.Key)
	}
	if int64(len(body)) != meta.Size {
		return Meta{}, nil, fmt.Errorf("%w: %s: body is %d bytes, header says %d",
			ErrCorrupt, key, len(body), meta.Size)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != meta.SHA256 {
		return Meta{}, nil, fmt.Errorf("%w: %s: body checksum mismatch", ErrCorrupt, key)
	}
	return meta, body, nil
}

// Stat returns the meta for key without reading (or verifying) the body.
// It reads only the header line, so it is cheap enough for status probes.
func (s *Store) Stat(key string) (Meta, error) {
	if err := validKey(key); err != nil {
		return Meta{}, err
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Meta{}, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return Meta{}, fmt.Errorf("store: opening %s: %w", key, err)
	}
	defer f.Close()
	header, err := bufio.NewReader(io.LimitReader(f, 4096)).ReadBytes('\n')
	if err != nil {
		return Meta{}, fmt.Errorf("%w: %s: unreadable meta header", ErrCorrupt, key)
	}
	var meta Meta
	if err := json.Unmarshal(bytes.TrimSuffix(header, []byte("\n")), &meta); err != nil {
		return Meta{}, fmt.Errorf("%w: %s: bad meta header: %v", ErrCorrupt, key, err)
	}
	return meta, nil
}

// Has reports whether an entry exists for key (without integrity
// verification; Get still performs the full check).
func (s *Store) Has(key string) bool {
	if validKey(key) != nil {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Keys walks the store and returns every entry key, sorted by the
// directory walk order. Intended for diagnostics and smoke tests, not the
// serving path.
func (s *Store) Keys() ([]string, error) {
	var out []string
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return err
		}
		if validKey(d.Name()) == nil {
			out = append(out, d.Name())
		}
		return nil
	})
	return out, err
}

// WriteMetrics appends the store counters to a Prometheus text scrape.
func (s *Store) WriteMetrics(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# HELP hitl_store_hits_total Result-store reads served from disk.\n")
	b.WriteString("# TYPE hitl_store_hits_total counter\n")
	fmt.Fprintf(&b, "hitl_store_hits_total %d\n", s.hits.Load())
	b.WriteString("# HELP hitl_store_misses_total Result-store reads with no entry on disk.\n")
	b.WriteString("# TYPE hitl_store_misses_total counter\n")
	fmt.Fprintf(&b, "hitl_store_misses_total %d\n", s.misses.Load())
	b.WriteString("# HELP hitl_store_writes_total Result-store entries published (write-temp-then-rename).\n")
	b.WriteString("# TYPE hitl_store_writes_total counter\n")
	fmt.Fprintf(&b, "hitl_store_writes_total %d\n", s.writes.Load())
	b.WriteString("# HELP hitl_store_corrupt_total Entries that failed the integrity check on read and were removed.\n")
	b.WriteString("# TYPE hitl_store_corrupt_total counter\n")
	fmt.Fprintf(&b, "hitl_store_corrupt_total %d\n", s.corrupt.Load())
	_, err := io.WriteString(w, b.String())
	return err
}
