package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func digestOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := digestOf("spec-1")
	body := []byte(`{"points":[1,2,3]}` + "\n")
	meta, err := s.Put(key, body)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != int64(len(body)) || meta.Key != key {
		t.Errorf("meta = %+v", meta)
	}
	got, gmeta, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("body mismatch: got %q", got)
	}
	if gmeta.SHA256 != meta.SHA256 || gmeta.ETag() != `"`+meta.SHA256+`"` {
		t.Errorf("meta mismatch: %+v vs %+v", gmeta, meta)
	}
	if !s.Has(key) {
		t.Error("Has = false after Put")
	}
	if st, err := s.Stat(key); err != nil || st.SHA256 != meta.SHA256 {
		t.Errorf("Stat = %+v, %v", st, err)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(digestOf("nope")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if s.misses.Load() != 1 {
		t.Errorf("misses = %d, want 1", s.misses.Load())
	}
}

// TestCorruptEntryDetectedAndRemoved flips a body byte on disk and checks
// the read reports ErrCorrupt, removes the entry, and counts it.
func TestCorruptEntryDetectedAndRemoved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := digestOf("spec-corrupt")
	if _, err := s.Put(key, []byte("the result body")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if s.Has(key) {
		t.Error("corrupt entry still on disk after detection")
	}
	if s.corrupt.Load() != 1 {
		t.Errorf("corrupt counter = %d, want 1", s.corrupt.Load())
	}
	// The next read is a clean miss, so callers recompute.
	if _, _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-removal err = %v, want ErrNotFound", err)
	}
}

// TestTruncatedEntryIsCorrupt simulates a torn write that somehow reached
// the final path (e.g. disk loss after rename).
func TestTruncatedEntryIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := digestOf("spec-truncated")
	if _, err := s.Put(key, []byte("a body that will lose its tail")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key)
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", "../../../etc/passwd00", strings.Repeat("z", 64),
		strings.Repeat("A", 64), digestOf("x") + "/nested",
	} {
		if _, err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", key)
		}
		if s.Has(key) {
			t.Errorf("Has(%q) = true", key)
		}
	}
}

// TestPutReplacesAtomically overwrites a key while readers hammer it and
// checks every read sees a complete, self-consistent entry.
func TestPutReplacesAtomically(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := digestOf("spec-swap")
	bodies := [][]byte{
		[]byte(strings.Repeat("a", 4096)),
		[]byte(strings.Repeat("b", 8192)),
	}
	if _, err := s.Put(key, bodies[0]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Put(key, bodies[i%2]); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		body, meta, err := s.Get(key)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if int64(len(body)) != meta.Size {
			t.Fatalf("read %d: torn entry (%d bytes, meta %d)", i, len(body), meta.Size)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

func TestKeysAndMetrics(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 5; i++ {
		key := digestOf(fmt.Sprintf("spec-%d", i))
		if _, err := s.Put(key, []byte(fmt.Sprintf("body-%d", i))); err != nil {
			t.Fatal(err)
		}
		want[key] = true
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys() = %d entries, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %s", k)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, m := range []string{
		"hitl_store_hits_total", "hitl_store_misses_total",
		"hitl_store_writes_total 5", "hitl_store_corrupt_total 0",
	} {
		if !strings.Contains(text, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

// TestSurvivesReopen is the persistence contract in miniature: a new Store
// over the same directory serves entries written by a previous one.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := digestOf("spec-durable")
	body := []byte("computed once")
	meta1, err := s1.Put(key, body)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, meta2, err := s2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) || meta2.ETag() != meta1.ETag() {
		t.Errorf("reopened store: body %q, etag %s vs %s", got, meta2.ETag(), meta1.ETag())
	}
}
