package study

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the dataset parser never panics on malformed input
// and either errors or returns structurally-consistent records.
func FuzzReadCSV(f *testing.F) {
	hdr := strings.Join(csvHeader, ",")
	f.Add("")
	f.Add(hdr + "\n")
	f.Add(hdr + "\n1,a,30,0.5,true,true,true,true,true,true,true,true,none\n")
	f.Add(hdr + "\nx,a,30,0.5,true,true,true,true,true,true,true,true,none\n")
	f.Add("garbage,header\n1,2\n")
	f.Add(hdr + "\n1,a,30,0.5,true,true\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		for _, r := range ds.Records {
			if r.Condition == "" && r.Subject == 0 && r.FailedStage == "" {
				// Tolerated: zero-value rows can only come from valid CSV.
				continue
			}
		}
	})
}
