// Package study generates synthetic user studies. The paper's process
// leans on user studies at two points — "user studies can provide
// empirical evidence as to which failures occur in practice" (failure
// identification) and "user studies can help designers evaluate the
// effectiveness of their failure mitigation efforts" — and when empirical
// data is unavailable, "the framework can suggest areas where user studies
// are needed".
//
// A Design assigns subjects to between-subjects arms (communication
// variants), runs each subject once through the receiver pipeline, and
// records a per-subject trace row exactly as a lab study would: noticed,
// read, comprehended, knew what to do, believed, was motivated, was
// capable, heeded, and the failing stage. Datasets round-trip through CSV
// and come with a chi-square homogeneity test over heed rates, so the
// study can be "analyzed" the way its real counterparts were.
package study

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"

	"hitl/internal/agent"
	"hitl/internal/comms"
	"hitl/internal/gems"
	"hitl/internal/population"
	"hitl/internal/stats"
	"hitl/internal/stimuli"
)

// Arm is one between-subjects condition.
type Arm struct {
	// Name labels the arm.
	Name string
	// Comm is the communication shown.
	Comm comms.Communication
	// Interference optionally attacks this arm's delivery.
	Interference stimuli.Interference
	// PreTrained gives subjects interactive topic training first.
	PreTrained bool
}

// Design is a between-subjects study design.
type Design struct {
	// Name labels the study.
	Name string
	// Arms are the conditions; subjects are assigned round-robin after a
	// seeded shuffle, approximating random assignment.
	Arms []Arm
	// Population describes the subject pool; defaults to the general
	// public.
	Population population.Spec
	// Env is the lab environment; defaults to Busy (subjects work on a
	// primary task, as in the cited studies).
	Env stimuli.Environment
	// Primed tells subjects to watch for security indicators (as Wu et al.
	// did); defaults false.
	Primed bool
	// N is the total number of subjects across arms.
	N int
	// Seed drives sampling and assignment.
	Seed int64
}

// Validate checks the design.
func (d Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("study: design has empty name")
	}
	if len(d.Arms) < 1 {
		return fmt.Errorf("study: design %s has no arms", d.Name)
	}
	seen := map[string]bool{}
	for _, a := range d.Arms {
		if a.Name == "" {
			return fmt.Errorf("study: design %s has an unnamed arm", d.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("study: design %s: duplicate arm %q", d.Name, a.Name)
		}
		seen[a.Name] = true
		if err := a.Comm.Validate(); err != nil {
			return fmt.Errorf("study: arm %s: %w", a.Name, err)
		}
		if err := a.Interference.Validate(); err != nil {
			return fmt.Errorf("study: arm %s: %w", a.Name, err)
		}
	}
	if d.N < len(d.Arms) {
		return fmt.Errorf("study: design %s: N=%d smaller than arm count %d", d.Name, d.N, len(d.Arms))
	}
	return nil
}

// Record is one subject's study row.
type Record struct {
	Subject   int
	Condition string
	// Coarse demographics, as a study would report.
	Age       int
	Expertise float64
	// Stage outcomes. Later fields are false whenever an earlier stage
	// failed (the subject never got there), matching how studies code
	// dependent measures.
	Noticed      bool
	Read         bool
	Comprehended bool
	KnewWhatToDo bool
	Believed     bool
	Motivated    bool
	Capable      bool
	Heeded       bool
	// FailedStage is the framework root cause ("none" when heeded).
	FailedStage string
}

// Dataset is the study output.
type Dataset struct {
	Design  string
	Records []Record
}

// Run executes the study.
func (d Design) Run() (*Dataset, error) {
	if d.Population.Name == "" {
		d.Population = population.GeneralPublic()
	}
	if d.Env == (stimuli.Environment{}) {
		d.Env = stimuli.Busy()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(d.Seed))
	// Random assignment: shuffle arm indices across subjects.
	assign := make([]int, d.N)
	for i := range assign {
		assign[i] = i % len(d.Arms)
	}
	rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })

	ds := &Dataset{Design: d.Name, Records: make([]Record, 0, d.N)}
	// One trace-collecting receiver, reset per subject: the per-stage
	// Record booleans below are read off the trace.
	r := agent.NewReceiver(population.Profile{})
	r.CollectTrace = true
	for subj := 0; subj < d.N; subj++ {
		arm := d.Arms[assign[subj]]
		prof := d.Population.Sample(rng)
		r.Reset(prof)
		if arm.PreTrained {
			r.Train(arm.Comm.Topic, agent.Skill{Level: 0.85, Interactivity: 0.85})
		}
		res, err := r.Process(rng, agent.Encounter{
			Comm:          arm.Comm,
			Env:           d.Env,
			Interference:  arm.Interference,
			HazardPresent: true,
			Primed:        d.Primed,
			Task:          gems.LeaveSuspiciousSite(),
		})
		if err != nil {
			return nil, fmt.Errorf("study: subject %d: %w", subj, err)
		}
		rec := Record{
			Subject:     subj,
			Condition:   arm.Name,
			Age:         prof.Age,
			Expertise:   prof.Expertise(),
			Heeded:      res.Heeded,
			FailedStage: res.FailedStage.String(),
		}
		for _, c := range res.Trace {
			if !c.Passed {
				continue
			}
			switch c.Stage {
			case agent.StageAttentionSwitch:
				rec.Noticed = true
			case agent.StageAttentionMaintenance:
				rec.Read = true
			case agent.StageComprehension:
				rec.Comprehended = true
			case agent.StageKnowledgeAcquisition:
				rec.KnewWhatToDo = true
			case agent.StageAttitudesBeliefs:
				rec.Believed = true
			case agent.StageMotivation:
				rec.Motivated = true
			case agent.StageCapabilities:
				rec.Capable = true
			}
		}
		ds.Records = append(ds.Records, rec)
	}
	return ds, nil
}

// Conditions returns the distinct condition names in the dataset, sorted.
func (ds *Dataset) Conditions() []string {
	seen := map[string]bool{}
	for _, r := range ds.Records {
		seen[r.Condition] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Rate returns the proportion of records in the condition for which the
// metric is true.
func (ds *Dataset) Rate(condition string, metric func(Record) bool) stats.Proportion {
	var p stats.Proportion
	for _, r := range ds.Records {
		if r.Condition != condition {
			continue
		}
		p.Trials++
		if metric(r) {
			p.Successes++
		}
	}
	return p
}

// HeedTest runs a chi-square homogeneity test of heed rates across all
// conditions, answering the study's primary question: do the conditions
// differ?
func (ds *Dataset) HeedTest() (chi float64, df int, p float64, err error) {
	conds := ds.Conditions()
	if len(conds) < 2 {
		return 0, 0, 0, fmt.Errorf("study: need >= 2 conditions, have %d", len(conds))
	}
	groups := make([]stats.Proportion, len(conds))
	for i, c := range conds {
		groups[i] = ds.Rate(c, func(r Record) bool { return r.Heeded })
	}
	return stats.TwoProportionChiSquare(groups)
}

// csvHeader is the canonical column order.
var csvHeader = []string{
	"subject", "condition", "age", "expertise",
	"noticed", "read", "comprehended", "knew_what_to_do",
	"believed", "motivated", "capable", "heeded", "failed_stage",
}

// WriteCSV emits the dataset with a header row.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	b := strconv.FormatBool
	for _, r := range ds.Records {
		row := []string{
			strconv.Itoa(r.Subject), r.Condition, strconv.Itoa(r.Age),
			strconv.FormatFloat(r.Expertise, 'f', 4, 64),
			b(r.Noticed), b(r.Read), b(r.Comprehended), b(r.KnewWhatToDo),
			b(r.Believed), b(r.Motivated), b(r.Capable), b(r.Heeded),
			r.FailedStage,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. The design name is not
// stored in the CSV; pass it explicitly.
func ReadCSV(r io.Reader, designName string) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("study: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("study: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) {
		return nil, fmt.Errorf("study: header has %d columns, want %d", len(rows[0]), len(csvHeader))
	}
	for i, h := range csvHeader {
		if rows[0][i] != h {
			return nil, fmt.Errorf("study: column %d is %q, want %q", i, rows[0][i], h)
		}
	}
	ds := &Dataset{Design: designName, Records: make([]Record, 0, len(rows)-1)}
	for i, row := range rows[1:] {
		rec, err := parseRecord(row)
		if err != nil {
			return nil, fmt.Errorf("study: row %d: %w", i+2, err)
		}
		ds.Records = append(ds.Records, rec)
	}
	return ds, nil
}

func parseRecord(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Subject, err = strconv.Atoi(row[0]); err != nil {
		return rec, fmt.Errorf("subject: %w", err)
	}
	rec.Condition = row[1]
	if rec.Age, err = strconv.Atoi(row[2]); err != nil {
		return rec, fmt.Errorf("age: %w", err)
	}
	if rec.Expertise, err = strconv.ParseFloat(row[3], 64); err != nil {
		return rec, fmt.Errorf("expertise: %w", err)
	}
	bools := []*bool{
		&rec.Noticed, &rec.Read, &rec.Comprehended, &rec.KnewWhatToDo,
		&rec.Believed, &rec.Motivated, &rec.Capable, &rec.Heeded,
	}
	for j, dst := range bools {
		v, err := strconv.ParseBool(row[4+j])
		if err != nil {
			return rec, fmt.Errorf("%s: %w", csvHeader[4+j], err)
		}
		*dst = v
	}
	rec.FailedStage = row[12]
	return rec, nil
}

// EgelmanReplication returns the ready-made §3.1 study design: the four
// standard warning conditions, between subjects.
func EgelmanReplication(n int, seed int64) Design {
	return Design{
		Name: "egelman-2008-replication",
		Arms: []Arm{
			{Name: "firefox-active", Comm: comms.FirefoxActiveWarning()},
			{Name: "ie-active", Comm: comms.IEActiveWarning()},
			{Name: "ie-passive", Comm: comms.IEPassiveWarning()},
			{Name: "toolbar-passive", Comm: comms.ToolbarPassiveIndicator()},
		},
		N:    n,
		Seed: seed,
	}
}
