package study

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"hitl/internal/comms"
	"hitl/internal/stimuli"
)

func TestDesignValidate(t *testing.T) {
	d := EgelmanReplication(400, 1)
	if err := d.Validate(); err != nil {
		t.Fatalf("preset design invalid: %v", err)
	}
	bad := d
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name: want error")
	}
	bad = d
	bad.Arms = nil
	if err := bad.Validate(); err == nil {
		t.Error("no arms: want error")
	}
	bad = d
	bad.Arms = append([]Arm{}, d.Arms...)
	bad.Arms[1].Name = bad.Arms[0].Name
	if err := bad.Validate(); err == nil {
		t.Error("duplicate arm: want error")
	}
	bad = d
	bad.N = 2
	if err := bad.Validate(); err == nil {
		t.Error("N < arms: want error")
	}
	bad = EgelmanReplication(400, 1)
	bad.Arms[0].Comm.ID = ""
	if err := bad.Validate(); err == nil {
		t.Error("invalid communication: want error")
	}
}

func TestRunProducesBalancedArms(t *testing.T) {
	ds, err := EgelmanReplication(4000, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 4000 {
		t.Fatalf("got %d records", len(ds.Records))
	}
	conds := ds.Conditions()
	if len(conds) != 4 {
		t.Fatalf("conditions = %v", conds)
	}
	for _, c := range conds {
		p := ds.Rate(c, func(Record) bool { return true })
		if p.Trials != 1000 {
			t.Errorf("arm %s has %d subjects, want 1000", c, p.Trials)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := EgelmanReplication(500, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := EgelmanReplication(500, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Error("study not reproducible for identical seeds")
	}
}

func TestStageFieldsAreConsistent(t *testing.T) {
	ds, err := EgelmanReplication(2000, 11).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		// Dependent coding: you cannot read what you did not notice, or
		// heed without being capable (unless the heuristic path decided).
		if r.Read && !r.Noticed {
			t.Fatalf("record %d read without noticing", r.Subject)
		}
		if r.Comprehended && !r.Read {
			t.Fatalf("record %d comprehended without reading", r.Subject)
		}
		if r.Heeded && r.FailedStage != "none" {
			t.Fatalf("record %d heeded but failed at %s", r.Subject, r.FailedStage)
		}
		if !r.Heeded && r.FailedStage == "none" {
			t.Fatalf("record %d unheeded without a failed stage", r.Subject)
		}
	}
}

func TestStudyReproducesEffect(t *testing.T) {
	ds, err := EgelmanReplication(4000, 13).Run()
	if err != nil {
		t.Fatal(err)
	}
	heed := func(c string) float64 {
		return ds.Rate(c, func(r Record) bool { return r.Heeded }).Rate()
	}
	if !(heed("firefox-active") > heed("ie-active") && heed("ie-active") > heed("ie-passive")) {
		t.Errorf("study heed ordering violated: ff=%.3f iea=%.3f iep=%.3f",
			heed("firefox-active"), heed("ie-active"), heed("ie-passive"))
	}
	// Noticing separates active from passive.
	noticed := func(c string) float64 {
		return ds.Rate(c, func(r Record) bool { return r.Noticed }).Rate()
	}
	if noticed("firefox-active") < 0.9 {
		t.Errorf("blocking warning noticing %.3f too low", noticed("firefox-active"))
	}
	if noticed("toolbar-passive") > 0.3 {
		t.Errorf("toolbar noticing %.3f too high", noticed("toolbar-passive"))
	}
	// The primary test comes out strongly significant.
	chi, df, p, err := ds.HeedTest()
	if err != nil {
		t.Fatal(err)
	}
	if df != 3 {
		t.Errorf("df = %d, want 3", df)
	}
	if p > 1e-10 {
		t.Errorf("chi=%.1f p=%v, want overwhelming significance", chi, p)
	}
}

func TestNullStudyIsInsignificant(t *testing.T) {
	// Two identical arms should usually NOT reach significance.
	d := Design{
		Name: "null",
		Arms: []Arm{
			{Name: "a", Comm: comms.FirefoxActiveWarning()},
			{Name: "b", Comm: comms.FirefoxActiveWarning()},
		},
		N: 2000, Seed: 17,
	}
	ds, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, _, p, err := ds.HeedTest()
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("null comparison significant at p=%v (unlucky seeds possible but suspicious)", p)
	}
}

func TestInterferenceArm(t *testing.T) {
	d := Design{
		Name: "spoof-study",
		Arms: []Arm{
			{Name: "genuine", Comm: comms.FirefoxActiveWarning()},
			{Name: "spoofed", Comm: comms.FirefoxActiveWarning(),
				Interference: stimuli.Interference{Kind: stimuli.Spoof, Strength: 1}},
		},
		N: 1000, Seed: 23,
	}
	ds, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r := ds.Rate("spoofed", func(r Record) bool { return r.Heeded }).Rate(); r != 0 {
		t.Errorf("spoofed arm heed rate %.3f, want 0", r)
	}
	if r := ds.Rate("genuine", func(r Record) bool { return r.Heeded }).Rate(); r < 0.5 {
		t.Errorf("genuine arm heed rate %.3f too low", r)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := EgelmanReplication(200, 29).Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, ds.Design)
	if err != nil {
		t.Fatal(err)
	}
	if back.Design != ds.Design || len(back.Records) != len(ds.Records) {
		t.Fatalf("round-trip lost records: %d vs %d", len(back.Records), len(ds.Records))
	}
	for i := range ds.Records {
		a, b := ds.Records[i], back.Records[i]
		// Expertise is rounded to 4 decimals in CSV.
		a.Expertise, b.Expertise = 0, 0
		if a != b {
			t.Fatalf("record %d differs after round-trip:\n%+v\n%+v", i, ds.Records[i], back.Records[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty: want error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n"), "x"); err == nil {
		t.Error("wrong header width: want error")
	}
	hdr := strings.Join(csvHeader, ",")
	if _, err := ReadCSV(strings.NewReader(hdr+"\nnotanint,a,30,0.5,true,true,true,true,true,true,true,true,none\n"), "x"); err == nil {
		t.Error("bad subject: want error")
	}
	badHdr := strings.Replace(hdr, "condition", "cond", 1)
	if _, err := ReadCSV(strings.NewReader(badHdr+"\n"), "x"); err == nil {
		t.Error("wrong header name: want error")
	}
	if _, err := ReadCSV(strings.NewReader(hdr+"\n1,a,30,0.5,true,true,true,true,true,true,true,maybe,none\n"), "x"); err == nil {
		t.Error("bad bool: want error")
	}
}

func TestHeedTestNeedsTwoConditions(t *testing.T) {
	ds := &Dataset{Design: "x", Records: []Record{{Condition: "only", Heeded: true}}}
	if _, _, _, err := ds.HeedTest(); err == nil {
		t.Error("single condition: want error")
	}
}
