package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Cluster metrics are process-wide like the engine metrics: a coordinator
// embedded in any process folds its dispatch/retry/failover activity into
// these collectors, and WriteMetrics appends them to the Prometheus
// output. All counters are cumulative since process start; the unhealthy
// gauge tracks the coordinator's current view of its worker pool.
var cluster = struct {
	runs          atomic.Int64
	partialRuns   atomic.Int64
	dispatched    atomic.Int64
	retries       atomic.Int64
	failovers     atomic.Int64
	nodeUnhealthy atomic.Int64
}{}

// RecordClusterRun counts one completed cluster run; partial marks runs
// that finished under a partial-completion policy with shards missing.
func RecordClusterRun(partial bool) {
	cluster.runs.Add(1)
	if partial {
		cluster.partialRuns.Add(1)
	}
}

// RecordShardDispatched counts one shard handed to a worker (first
// attempts and retries alike).
func RecordShardDispatched() { cluster.dispatched.Add(1) }

// RecordShardRetry counts one shard attempt re-dispatched after a
// retryable failure.
func RecordShardRetry() { cluster.retries.Add(1) }

// RecordShardFailover counts one shard moved off its preferred node to
// the next ring position.
func RecordShardFailover() { cluster.failovers.Add(1) }

// SetNodesUnhealthy sets the coordinator's current count of unhealthy
// workers.
func SetNodesUnhealthy(n int) { cluster.nodeUnhealthy.Store(int64(n)) }

// writeClusterMetrics renders the cluster section of WriteMetrics.
func writeClusterMetrics(b *strings.Builder) {
	b.WriteString("# HELP hitl_cluster_runs_total Cluster runs coordinated by this process.\n")
	b.WriteString("# TYPE hitl_cluster_runs_total counter\n")
	fmt.Fprintf(b, "hitl_cluster_runs_total %d\n", cluster.runs.Load())

	b.WriteString("# HELP hitl_cluster_partial_runs_total Cluster runs completed with shards missing.\n")
	b.WriteString("# TYPE hitl_cluster_partial_runs_total counter\n")
	fmt.Fprintf(b, "hitl_cluster_partial_runs_total %d\n", cluster.partialRuns.Load())

	b.WriteString("# HELP hitl_cluster_shards_dispatched_total Shard attempts dispatched to workers.\n")
	b.WriteString("# TYPE hitl_cluster_shards_dispatched_total counter\n")
	fmt.Fprintf(b, "hitl_cluster_shards_dispatched_total %d\n", cluster.dispatched.Load())

	b.WriteString("# HELP hitl_cluster_shard_retries_total Shard attempts re-dispatched after a retryable failure.\n")
	b.WriteString("# TYPE hitl_cluster_shard_retries_total counter\n")
	fmt.Fprintf(b, "hitl_cluster_shard_retries_total %d\n", cluster.retries.Load())

	b.WriteString("# HELP hitl_cluster_shard_failovers_total Shards moved to another node after their preferred node failed.\n")
	b.WriteString("# TYPE hitl_cluster_shard_failovers_total counter\n")
	fmt.Fprintf(b, "hitl_cluster_shard_failovers_total %d\n", cluster.failovers.Load())

	b.WriteString("# HELP hitl_cluster_node_unhealthy Workers the coordinator currently considers unhealthy.\n")
	b.WriteString("# TYPE hitl_cluster_node_unhealthy gauge\n")
	fmt.Fprintf(b, "hitl_cluster_node_unhealthy %d\n", cluster.nodeUnhealthy.Load())
}
