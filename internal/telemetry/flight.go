package telemetry

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"time"
)

// The flight recorder is a bounded in-process ring buffer of wide events:
// rare, high-signal state changes (a request shed, a job completing, a
// store entry quarantined) rather than per-subject samples. It exists so
// an incident can be reconstructed after the fact even when nobody was
// scraping metrics — the server exposes it at GET /v1/debug/events and
// dumps it to the log on shutdown and on recovered panics.
//
// Event kinds recorded across the process (the recorder itself accepts any
// string; this is the vocabulary the rest of the codebase uses):
//
//	request-admitted   a request passed admission control
//	request-shed       a request was shed by the overload queue (429)
//	degraded-enter     the server entered post-shed degraded mode
//	degraded-exit      the server left degraded mode
//	cache-evict        the server result cache evicted an entry
//	job-submit         a new async job was created
//	job-coalesced      a submission coalesced onto an existing job
//	job-running        a job left the queue and started computing
//	job-complete       a job persisted its result and completed
//	job-failed         a job failed
//	panic-recovered    the engine contained a subject panic
//	store-quarantine   the store deleted a corrupt entry on read

// Event kinds used across the process. The recorder accepts any string;
// these constants keep call sites and filters in agreement.
const (
	EventRequestAdmitted = "request-admitted"
	EventRequestShed     = "request-shed"
	EventDegradedEnter   = "degraded-enter"
	EventDegradedExit    = "degraded-exit"
	EventCacheEvict      = "cache-evict"
	EventJobSubmit       = "job-submit"
	EventJobCoalesced    = "job-coalesced"
	EventJobRunning      = "job-running"
	EventJobComplete     = "job-complete"
	EventJobFailed       = "job-failed"
	EventPanicRecovered  = "panic-recovered"
	EventStoreQuarantine = "store-quarantine"

	// Cluster events, recorded by the coordinator: every shard handed to
	// a worker, every retry and failover decision, and every health-state
	// transition of a pool node.
	EventShardDispatch = "shard-dispatch"
	EventShardRetry    = "shard-retry"
	EventShardFailover = "shard-failover"
	EventNodeUnhealthy = "node-unhealthy"
	EventNodeRecovered = "node-recovered"
)

// FlightEvent is one recorded wide event. Seq increases by one per event
// for the recorder's lifetime, so a client can page with ?since=<seq> and
// detect drops (a gap in Seq means the ring wrapped past it).
type FlightEvent struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-capacity ring of FlightEvents. Record is a
// short critical section (one index computation and one struct store);
// events are per-request/per-job rare, never per subject, so a plain
// mutex is cheap enough and keeps Events/WriteJSONL trivially consistent.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	total uint64 // events ever recorded; buf[(seq-1) % cap] holds event seq
	clock Clock
}

// DefaultFlightCapacity bounds the process-wide recorder: at typical
// production event rates (a handful per request lifecycle) this holds the
// last several minutes of history in ~100 KiB.
const DefaultFlightCapacity = 1024

// NewFlightRecorder returns a recorder holding the last capacity events.
// Capacity values below 1 are raised to 1.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity), clock: SystemClock}
}

// Flight is the process-wide recorder. Server, jobs, and store code record
// into it directly — like the engine metrics, plumbing an instance through
// every layer would buy nothing but ceremony for a process-scoped ring.
var Flight = NewFlightRecorder(DefaultFlightCapacity)

// Record appends one event, overwriting the oldest once the ring is full.
func (fr *FlightRecorder) Record(kind, detail string) {
	fr.mu.Lock()
	fr.total++
	ev := FlightEvent{Seq: fr.total, Time: fr.clock.Now().UTC(), Kind: kind, Detail: detail}
	if len(fr.buf) < cap(fr.buf) {
		fr.buf = append(fr.buf, ev)
	} else {
		fr.buf[(fr.total-1)%uint64(cap(fr.buf))] = ev
	}
	fr.mu.Unlock()
}

// Total returns how many events have ever been recorded (not how many are
// still buffered); the difference against len(Events(0)) is the drop count.
func (fr *FlightRecorder) Total() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Capacity returns the ring size.
func (fr *FlightRecorder) Capacity() int { return cap(fr.buf) }

// Events returns the buffered events with Seq > since, oldest first,
// optionally filtered to the given kinds (none means all). The returned
// slice is a copy and safe to retain.
func (fr *FlightRecorder) Events(since uint64, kinds ...string) []FlightEvent {
	var want map[string]bool
	if len(kinds) > 0 {
		want = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			want[k] = true
		}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := uint64(len(fr.buf))
	if n == 0 {
		return nil
	}
	// Oldest buffered event has seq fr.total-n+1; walk seqs in order and
	// index the ring position each one lives at.
	out := make([]FlightEvent, 0, n)
	for seq := fr.total - n + 1; seq <= fr.total; seq++ {
		ev := fr.buf[(seq-1)%uint64(cap(fr.buf))]
		if ev.Seq <= since {
			continue
		}
		if want != nil && !want[ev.Kind] {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// WriteJSONL writes every buffered event as one JSON object per line,
// oldest first — the dump format for shutdown and panic incident logs.
func (fr *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range fr.Events(0) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// FlightDump renders the process-wide recorder as JSONL for log output.
func FlightDump() string {
	var b strings.Builder
	_ = Flight.WriteJSONL(&b)
	return b.String()
}
