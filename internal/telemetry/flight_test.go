package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderOrderAndTotal(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.clock = &fakeClock{now: time.Unix(1000, 0), step: time.Second}
	for i := 0; i < 5; i++ {
		fr.Record("kind", fmt.Sprintf("ev%d", i))
	}
	if fr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", fr.Total())
	}
	evs := fr.Events(0)
	if len(evs) != 5 {
		t.Fatalf("Events = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Detail != fmt.Sprintf("ev%d", i) {
			t.Errorf("event %d = %+v, want seq %d detail ev%d", i, ev, i+1, i)
		}
	}
}

// TestFlightRecorderWraparound overfills the ring and checks only the most
// recent capacity events survive, in order, with contiguous sequence
// numbers (the gap before the first one is the drop signal).
func TestFlightRecorderWraparound(t *testing.T) {
	const capacity = 4
	fr := NewFlightRecorder(capacity)
	for i := 1; i <= 11; i++ {
		fr.Record("k", fmt.Sprintf("ev%d", i))
	}
	evs := fr.Events(0)
	if len(evs) != capacity {
		t.Fatalf("Events = %d, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint64(11 - capacity + 1 + i)
		if ev.Seq != wantSeq || ev.Detail != fmt.Sprintf("ev%d", wantSeq) {
			t.Errorf("event %d = seq %d detail %s, want seq %d", i, ev.Seq, ev.Detail, wantSeq)
		}
	}
	if fr.Total() != 11 {
		t.Errorf("Total = %d, want 11", fr.Total())
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record("a", "1")
	fr.Record("b", "2")
	fr.Record("a", "3")
	fr.Record("c", "4")
	if got := fr.Events(0, "a"); len(got) != 2 || got[0].Detail != "1" || got[1].Detail != "3" {
		t.Errorf("kind filter a = %+v", got)
	}
	if got := fr.Events(0, "a", "c"); len(got) != 3 {
		t.Errorf("kind filter a,c = %d events, want 3", len(got))
	}
	if got := fr.Events(2); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("since=2 = %+v", got)
	}
	if got := fr.Events(2, "b"); len(got) != 0 {
		t.Errorf("since=2 kind=b = %+v, want none", got)
	}
}

// TestFlightRecorderConcurrentWriters hammers one recorder from many
// goroutines (run under -race in CI) and checks the ring stays coherent:
// full capacity retained, sequence numbers strictly ascending and
// contiguous.
func TestFlightRecorderConcurrentWriters(t *testing.T) {
	const capacity, writers, perWriter = 64, 8, 200
	fr := NewFlightRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fr.Record("k", fmt.Sprintf("w%d-%d", w, i))
				if i%16 == 0 {
					fr.Events(0) // concurrent reads too
				}
			}
		}(w)
	}
	wg.Wait()
	if fr.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", fr.Total(), writers*perWriter)
	}
	evs := fr.Events(0)
	if len(evs) != capacity {
		t.Fatalf("Events = %d, want %d", len(evs), capacity)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("sequence gap in ring: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != writers*perWriter {
		t.Errorf("newest seq = %d, want %d", evs[len(evs)-1].Seq, writers*perWriter)
	}
}

func TestFlightWriteJSONL(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(EventJobSubmit, "abc")
	fr.Record(EventJobComplete, "abc")
	var b strings.Builder
	if err := fr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump = %d lines, want 2:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], EventJobSubmit) || !strings.Contains(lines[1], EventJobComplete) {
		t.Errorf("dump out of order:\n%s", b.String())
	}
}

// TestSnapshotDelta checks MetricsSnapshot.Delta isolates just the work
// between two snapshots, including per-stage counts, even on a process
// whose counters are already nonzero.
func TestSnapshotDelta(t *testing.T) {
	before := Snapshot()
	RecordRun(100, 2, time.Millisecond, map[string]int{"attention-maintenance": 7})
	RecordPanicRecovered()
	delta := Snapshot().Delta(before)
	if delta.Subjects != 100 || delta.Runs != 1 {
		t.Errorf("delta subjects/runs = %d/%d, want 100/1", delta.Subjects, delta.Runs)
	}
	if delta.PanicsRecovered != 1 {
		t.Errorf("delta panics = %d, want 1", delta.PanicsRecovered)
	}
	if delta.StageFailures["attention-maintenance"] != 7 {
		t.Errorf("delta stage failures = %v, want attention-maintenance:7", delta.StageFailures)
	}
}
