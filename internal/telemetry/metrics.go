package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Engine metrics are process-wide, like expvar: every sim run in the
// process folds into the same collectors, and the server's /v1/metrics
// endpoint appends them to its HTTP metrics. All hot-path updates are
// atomic and happen once per run or once per worker, never per subject.

// atomicFloat is a float64 accumulator built on CAS, for histogram sums.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// histogram is a fixed-bucket atomic histogram.
type histogram struct {
	bounds  []float64      // upper bounds; one extra implicit +Inf bucket
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sum     atomicFloat
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// writeProm renders the histogram in Prometheus text format.
func (h *histogram) writeProm(b *strings.Builder, name string) {
	var cum int64
	for i, le := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(le), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum.Load())
	fmt.Fprintf(b, "%s_count %d\n", name, h.count.Load())
}

// formatBound renders a bucket bound without exponents for the magnitudes
// used here.
func formatBound(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// runDurationBounds spans sub-millisecond micro-runs to multi-minute
// sweeps.
var runDurationBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// throughputBounds cover subjects/second on a log-ish scale.
var throughputBounds = []float64{
	1_000, 5_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// engine is the process-wide engine-metric state.
var engine = struct {
	subjects      atomic.Int64
	runs          atomic.Int64
	tracesKept    atomic.Int64
	activeWorkers atomic.Int64
	lastWorkers   atomic.Int64
	panics        atomic.Int64

	stageMu       sync.Mutex
	stageOrder    []string
	stageFailures map[string]*atomic.Int64

	runDuration *histogram
	throughput  *histogram

	spanMu    sync.Mutex
	spanOrder []string
	spans     map[string]*spanStat
}{
	stageFailures: make(map[string]*atomic.Int64),
	runDuration:   newHistogram(runDurationBounds),
	throughput:    newHistogram(throughputBounds),
	spans:         make(map[string]*spanStat),
}

// spanStat summarizes ended spans of one name for the Prometheus output.
type spanStat struct {
	count atomic.Int64
	sum   atomicFloat
}

// observeSpan folds one ended span into the process-wide summary.
func observeSpan(name string, d time.Duration) {
	engine.spanMu.Lock()
	st, ok := engine.spans[name]
	if !ok {
		st = new(spanStat)
		engine.spans[name] = st
		engine.spanOrder = append(engine.spanOrder, name)
	}
	engine.spanMu.Unlock()
	st.count.Add(1)
	st.sum.Add(d.Seconds())
}

// RecordPanicRecovered counts one subject panic the engine contained into
// a *sim.PanicError instead of letting it crash the process.
func RecordPanicRecovered() { engine.panics.Add(1) }

// WorkerStarted and WorkerDone maintain the live worker-utilization gauge.
func WorkerStarted() { engine.activeWorkers.Add(1) }

// WorkerDone is the counterpart to WorkerStarted.
func WorkerDone() { engine.activeWorkers.Add(-1) }

// RecordRun folds one completed Monte Carlo run into the engine metrics:
// subject and run counters, per-stage failure counters, the run-duration
// histogram, and the subjects/second throughput histogram.
func RecordRun(subjects, workers int, d time.Duration, stageFailures map[string]int) {
	engine.subjects.Add(int64(subjects))
	engine.runs.Add(1)
	engine.lastWorkers.Store(int64(workers))
	engine.runDuration.observe(d.Seconds())
	if secs := d.Seconds(); secs > 0 {
		engine.throughput.observe(float64(subjects) / secs)
	}
	for stage, n := range stageFailures {
		if n == 0 {
			continue
		}
		stageCounter(stage).Add(int64(n))
	}
}

func stageCounter(stage string) *atomic.Int64 {
	engine.stageMu.Lock()
	defer engine.stageMu.Unlock()
	c, ok := engine.stageFailures[stage]
	if !ok {
		c = new(atomic.Int64)
		engine.stageFailures[stage] = c
		engine.stageOrder = append(engine.stageOrder, stage)
	}
	return c
}

// WriteMetrics renders every engine metric and the span summaries in
// Prometheus text format (version 0.0.4). The server appends this to its
// HTTP metrics on GET /v1/metrics.
func WriteMetrics(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# HELP hitl_sim_subjects_total Subjects simulated by the Monte Carlo engine.\n")
	b.WriteString("# TYPE hitl_sim_subjects_total counter\n")
	fmt.Fprintf(&b, "hitl_sim_subjects_total %d\n", engine.subjects.Load())

	b.WriteString("# HELP hitl_sim_runs_total Completed Monte Carlo runs.\n")
	b.WriteString("# TYPE hitl_sim_runs_total counter\n")
	fmt.Fprintf(&b, "hitl_sim_runs_total %d\n", engine.runs.Load())

	b.WriteString("# HELP hitl_sim_stage_failures_total Subject failures by framework stage.\n")
	b.WriteString("# TYPE hitl_sim_stage_failures_total counter\n")
	engine.stageMu.Lock()
	stages := make([]string, len(engine.stageOrder))
	copy(stages, engine.stageOrder)
	engine.stageMu.Unlock()
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(&b, "hitl_sim_stage_failures_total{stage=%q} %d\n", s, stageCounter(s).Load())
	}

	b.WriteString("# HELP hitl_sim_run_duration_seconds Wall time per Monte Carlo run.\n")
	b.WriteString("# TYPE hitl_sim_run_duration_seconds histogram\n")
	engine.runDuration.writeProm(&b, "hitl_sim_run_duration_seconds")

	b.WriteString("# HELP hitl_sim_run_subjects_per_second Per-run simulation throughput.\n")
	b.WriteString("# TYPE hitl_sim_run_subjects_per_second histogram\n")
	engine.throughput.writeProm(&b, "hitl_sim_run_subjects_per_second")

	b.WriteString("# HELP hitl_sim_active_workers Monte Carlo workers currently running.\n")
	b.WriteString("# TYPE hitl_sim_active_workers gauge\n")
	fmt.Fprintf(&b, "hitl_sim_active_workers %d\n", engine.activeWorkers.Load())

	b.WriteString("# HELP hitl_sim_last_run_workers Worker count of the most recent run.\n")
	b.WriteString("# TYPE hitl_sim_last_run_workers gauge\n")
	fmt.Fprintf(&b, "hitl_sim_last_run_workers %d\n", engine.lastWorkers.Load())

	b.WriteString("# HELP hitl_sim_panics_recovered_total Subject panics contained by the engine instead of crashing the process.\n")
	b.WriteString("# TYPE hitl_sim_panics_recovered_total counter\n")
	fmt.Fprintf(&b, "hitl_sim_panics_recovered_total %d\n", engine.panics.Load())

	b.WriteString("# HELP hitl_sim_subject_traces_total Subject traces admitted to trace reservoirs.\n")
	b.WriteString("# TYPE hitl_sim_subject_traces_total counter\n")
	fmt.Fprintf(&b, "hitl_sim_subject_traces_total %d\n", engine.tracesKept.Load())

	b.WriteString("# HELP hitl_span_duration_seconds Time spent in telemetry spans, by span name.\n")
	b.WriteString("# TYPE hitl_span_duration_seconds summary\n")
	engine.spanMu.Lock()
	spanNames := make([]string, len(engine.spanOrder))
	copy(spanNames, engine.spanOrder)
	engine.spanMu.Unlock()
	sort.Strings(spanNames)
	for _, name := range spanNames {
		engine.spanMu.Lock()
		st := engine.spans[name]
		engine.spanMu.Unlock()
		fmt.Fprintf(&b, "hitl_span_duration_seconds_sum{span=%q} %g\n", name, st.sum.Load())
		fmt.Fprintf(&b, "hitl_span_duration_seconds_count{span=%q} %d\n", name, st.count.Load())
	}

	writeClusterMetrics(&b)
	writeProcessMetrics(&b)

	_, err := io.WriteString(w, b.String())
	return err
}
