package telemetry

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Process-level metrics: build identity, uptime, and goroutine count.
// These answer the first three questions of any incident — what binary is
// this, how long has it been up, and is it leaking goroutines — without
// shelling into the box.

// processStart anchors hitl_process_uptime_seconds at package init, which
// for a normal binary is within milliseconds of process start.
var processStart = time.Now()

// buildRevision returns the VCS revision baked in by the Go toolchain
// ("unknown" for test binaries and non-VCS builds), plus a "-dirty" suffix
// when the working tree was modified.
var buildRevision = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
})

// Uptime returns the time since process start, for surfaces (like the
// health endpoint) that report it outside the Prometheus exposition.
func Uptime() time.Duration { return time.Since(processStart) }

// BuildRevision returns the VCS revision of the running binary, as
// reported in hitl_build_info.
func BuildRevision() string { return buildRevision() }

// allocCounters reads the allocator's lifetime malloc count and allocated
// byte total for MetricsSnapshot.
func allocCounters() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// writeProcessMetrics appends the process-level gauges to the Prometheus
// exposition. Called from WriteMetrics.
func writeProcessMetrics(b *strings.Builder) {
	b.WriteString("# HELP hitl_build_info Build identity of the running binary; value is always 1.\n")
	b.WriteString("# TYPE hitl_build_info gauge\n")
	fmt.Fprintf(b, "hitl_build_info{go_version=%q,revision=%q} 1\n", runtime.Version(), buildRevision())

	b.WriteString("# HELP hitl_process_uptime_seconds Seconds since process start.\n")
	b.WriteString("# TYPE hitl_process_uptime_seconds gauge\n")
	fmt.Fprintf(b, "hitl_process_uptime_seconds %g\n", time.Since(processStart).Seconds())

	b.WriteString("# HELP hitl_process_goroutines Live goroutines in the process.\n")
	b.WriteString("# TYPE hitl_process_goroutines gauge\n")
	fmt.Fprintf(b, "hitl_process_goroutines %d\n", runtime.NumGoroutine())
}
