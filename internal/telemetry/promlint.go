package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus structurally checks a Prometheus text-format (0.0.4)
// exposition and returns one message per violation (nil means clean). It
// guards the hand-rolled writers in this repo — there is no client library
// to get the invariants right for us — and is exported so the server can
// lint its full /v1/metrics scrape, not just this package's section.
//
// Checked invariants:
//   - every sample belongs to a family announced by # HELP and # TYPE
//     lines earlier in the exposition;
//   - metric and family names match [a-zA-Z_:][a-zA-Z0-9_:]*;
//   - # TYPE declares a known type and appears at most once per family;
//   - every histogram series ends with _bucket{le="+Inf"}, _sum, and
//     _count samples, and the +Inf cumulative count equals _count;
//   - sample values parse as floats.
func LintPrometheus(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	type histSeries struct {
		infCount float64
		sawInf   bool
		count    float64
		sawCount bool
		sawSum   bool
	}
	type family struct {
		help, typ bool
		kind      string
		series    map[string]*histSeries // histogram series by non-le label set
	}
	families := map[string]*family{}
	var familyOrder []string
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{series: map[string]*histSeries{}}
			families[name] = f
			familyOrder = append(familyOrder, name)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, doc, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				addf("line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if strings.TrimSpace(doc) == "" {
				addf("line %d: HELP for %q has no text", lineNo, name)
			}
			f := get(name)
			if f.help {
				addf("line %d: duplicate HELP for %q", lineNo, name)
			}
			f.help = true
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				addf("line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, kind := fields[0], fields[1]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				addf("line %d: unknown metric type %q for %q", lineNo, kind, name)
			}
			f := get(name)
			if f.typ {
				addf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			f.typ = true
			f.kind = kind
			continue
		case strings.HasPrefix(line, "#"):
			continue // other comments are legal and unchecked
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			addf("line %d: unparseable sample %q", lineNo, line)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
			continue
		}
		// Resolve the sample to its family: histogram and summary samples
		// carry _bucket/_sum/_count suffixes on the family name.
		famName := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, suf)
			if !found {
				continue
			}
			if bf, ok := families[base]; ok && (bf.kind == "histogram" || bf.kind == "summary") {
				famName = base
				break
			}
		}
		f, ok := families[famName]
		if !ok || !f.help || !f.typ {
			addf("line %d: sample %q not preceded by HELP and TYPE for family %q", lineNo, name, famName)
			continue
		}
		if f.kind != "histogram" {
			continue
		}
		le, rest := splitLeLabel(labels)
		hs, ok := f.series[rest]
		if !ok {
			hs = &histSeries{}
			f.series[rest] = hs
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				addf("line %d: histogram bucket %q without le label", lineNo, line)
			} else if le == "+Inf" {
				hs.sawInf, hs.infCount = true, value
			}
		case strings.HasSuffix(name, "_sum"):
			hs.sawSum = true
		case strings.HasSuffix(name, "_count"):
			hs.sawCount, hs.count = true, value
		default:
			addf("line %d: histogram family %q has bare sample %q", lineNo, famName, name)
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	for _, name := range familyOrder {
		f := families[name]
		if f.help != f.typ {
			addf("family %q has HELP without TYPE or vice versa", name)
		}
		if f.kind != "histogram" {
			continue
		}
		seriesKeys := make([]string, 0, len(f.series))
		for k := range f.series {
			seriesKeys = append(seriesKeys, k)
		}
		sort.Strings(seriesKeys)
		for _, k := range seriesKeys {
			hs := f.series[k]
			where := name
			if k != "" {
				where = name + "{" + k + "}"
			}
			if !hs.sawInf {
				addf("histogram %s missing _bucket{le=\"+Inf\"}", where)
			}
			if !hs.sawSum {
				addf("histogram %s missing _sum", where)
			}
			if !hs.sawCount {
				addf("histogram %s missing _count", where)
			}
			if hs.sawInf && hs.sawCount && hs.infCount != hs.count {
				addf("histogram %s: +Inf bucket %g != _count %g", where, hs.infCount, hs.count)
			}
		}
	}
	return problems
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func validMetricName(name string) bool { return metricNameRe.MatchString(name) }

// parseSample splits `name{labels} value [timestamp]` into its parts.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, false
		}
		name, labels, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		var found bool
		name, rest, found = strings.Cut(line, " ")
		if !found {
			return "", "", 0, false
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, false
	}
	return name, labels, v, true
}

var labelPairRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// splitLeLabel extracts the le label value from a label set and returns
// the remaining pairs in sorted, canonical form so that the bucket, sum,
// and count samples of one histogram series key identically.
func splitLeLabel(labels string) (le, rest string) {
	var pairs []string
	for _, m := range labelPairRe.FindAllStringSubmatch(labels, -1) {
		if m[1] == "le" {
			le = m[2]
			continue
		}
		pairs = append(pairs, m[1]+`="`+m[2]+`"`)
	}
	sort.Strings(pairs)
	return le, strings.Join(pairs, ",")
}
