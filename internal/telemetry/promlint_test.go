package telemetry

import (
	"strings"
	"testing"
	"time"
)

// lintString is a test shorthand over LintPrometheus.
func lintString(s string) []string { return LintPrometheus(strings.NewReader(s)) }

func TestLintAcceptsWellFormedExposition(t *testing.T) {
	clean := `# HELP demo_total A counter.
# TYPE demo_total counter
demo_total 3
# HELP demo_seconds A histogram.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.1"} 1
demo_seconds_bucket{le="+Inf"} 2
demo_seconds_sum 0.3
demo_seconds_count 2
`
	if problems := lintString(clean); len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"sample before help/type", "orphan_total 1\n", "not preceded by HELP and TYPE"},
		{"help without type", "# HELP lonely_total doc\nlonely_total 1\n", "not preceded by HELP and TYPE"},
		{"bad metric name", "# HELP bad-name doc\n# TYPE bad-name counter\n", "invalid metric name"},
		{"unknown type", "# HELP x_total doc\n# TYPE x_total tally\nx_total 1\n", "unknown metric type"},
		{"duplicate type", "# HELP x doc\n# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"unparseable sample", "# HELP x doc\n# TYPE x gauge\nx one\n", "unparseable sample"},
		{
			"histogram missing +Inf",
			"# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			`missing _bucket{le="+Inf"}`,
		},
		{
			"histogram missing sum",
			"# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum",
		},
		{
			"histogram inf != count",
			"# HELP h doc\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
			"+Inf bucket 1 != _count 2",
		},
		{
			// Per-series completeness: each label set needs its own +Inf.
			"labeled histogram incomplete series",
			"# HELP h doc\n# TYPE h histogram\n" +
				"h_bucket{route=\"/a\",le=\"+Inf\"} 1\nh_sum{route=\"/a\"} 1\nh_count{route=\"/a\"} 1\n" +
				"h_bucket{route=\"/b\",le=\"1\"} 1\nh_sum{route=\"/b\"} 1\nh_count{route=\"/b\"} 1\n",
			`h{route="/b"} missing _bucket{le="+Inf"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := lintString(tc.in)
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Errorf("want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

// TestWriteMetricsLints lints this package's own exposition with counters,
// stage failures, spans, and process metrics all populated — the promlint
// self-test for the hand-rolled writer.
func TestWriteMetricsLints(t *testing.T) {
	RecordRun(50, 2, 5*time.Millisecond, map[string]int{"comprehension": 3})
	RecordPanicRecovered()
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if problems := LintPrometheus(strings.NewReader(b.String())); len(problems) != 0 {
		t.Errorf("WriteMetrics exposition fails lint:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestProcessMetricsPresent checks the build/uptime/goroutine gauges render
// with sane values.
func TestProcessMetricsPresent(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hitl_build_info{go_version=\"") {
		t.Error("missing hitl_build_info")
	}
	if !strings.Contains(out, "hitl_process_uptime_seconds ") {
		t.Error("missing hitl_process_uptime_seconds")
	}
	if !strings.Contains(out, "hitl_process_goroutines ") {
		t.Error("missing hitl_process_goroutines")
	}
}
