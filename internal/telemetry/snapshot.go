package telemetry

// MetricsSnapshot is a point-in-time copy of the engine counters plus the
// allocator counters that matter for run cost. Take one before and one
// after a run and Delta them to attribute engine work to that run — this
// is how RunReports carry "what the engine did" without a per-run metrics
// registry.
//
// Determinism: Subjects, Runs, StageFailures, and PanicsRecovered are
// exact functions of the run's (seed, spec) and therefore identical at any
// worker count on an otherwise-quiet process. TracesKept, Mallocs, and
// AllocBytes are scheduling-dependent (reservoir admission order and
// allocator behavior vary with interleaving); report canonicalization
// zeroes them before persisting.
type MetricsSnapshot struct {
	// Subjects and Runs are the engine's lifetime completed-subject and
	// completed-run counters.
	Subjects int64 `json:"subjects"`
	Runs     int64 `json:"runs"`
	// StageFailures counts subject failures by framework stage name.
	StageFailures map[string]int64 `json:"stage_failures,omitempty"`
	// PanicsRecovered counts subject panics contained into *sim.PanicError.
	PanicsRecovered int64 `json:"panics_recovered,omitempty"`
	// TracesKept counts subject traces admitted to trace reservoirs.
	TracesKept int64 `json:"traces_kept,omitempty"`
	// Mallocs and AllocBytes come from runtime.MemStats and cover the whole
	// process, not just the engine.
	Mallocs    uint64 `json:"mallocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
}

// Snapshot captures the engine counters and allocator totals now.
func Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Subjects:        engine.subjects.Load(),
		Runs:            engine.runs.Load(),
		PanicsRecovered: engine.panics.Load(),
		TracesKept:      engine.tracesKept.Load(),
	}
	engine.stageMu.Lock()
	if len(engine.stageOrder) > 0 {
		s.StageFailures = make(map[string]int64, len(engine.stageOrder))
		for _, stage := range engine.stageOrder {
			if n := engine.stageFailures[stage].Load(); n != 0 {
				s.StageFailures[stage] = n
			}
		}
	}
	engine.stageMu.Unlock()
	s.Mallocs, s.AllocBytes = allocCounters()
	return s
}

// Delta returns s minus since, field by field. Stage names present only in
// since (impossible for monotonic counters, but cheap to guard) are
// dropped; zero-delta stages are omitted.
func (s MetricsSnapshot) Delta(since MetricsSnapshot) MetricsSnapshot {
	d := MetricsSnapshot{
		Subjects:        s.Subjects - since.Subjects,
		Runs:            s.Runs - since.Runs,
		PanicsRecovered: s.PanicsRecovered - since.PanicsRecovered,
		TracesKept:      s.TracesKept - since.TracesKept,
		Mallocs:         s.Mallocs - since.Mallocs,
		AllocBytes:      s.AllocBytes - since.AllocBytes,
	}
	for stage, n := range s.StageFailures {
		if dn := n - since.StageFailures[stage]; dn > 0 {
			if d.StageFailures == nil {
				d.StageFailures = make(map[string]int64, len(s.StageFailures))
			}
			d.StageFailures[stage] = dn
		}
	}
	return d
}
