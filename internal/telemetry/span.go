package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Attributes are strings on purpose: spans are
// for explaining where time went, not for carrying payloads.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is a finished span as exported to JSON.
type SpanRecord struct {
	// ID and Parent link the span tree; Parent is 0 for roots.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name identifies the operation (experiment, sweep-point, run,
	// worker-batch, ...).
	Name string `json:"name"`
	// Start is the span's start time from the tracer's clock.
	Start time.Time `json:"start"`
	// DurationSeconds is the span's measured length.
	DurationSeconds float64 `json:"duration_seconds"`
	// Attrs carries the span's attributes, if any.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer collects finished spans for one traced operation (a CLI run, an
// HTTP request). It is safe for concurrent use; the engine's workers all
// end spans into the same tracer.
type Tracer struct {
	clock  Clock
	nextID atomic.Uint64

	mu       sync.Mutex
	finished []SpanRecord
}

// NewTracer creates a tracer. A nil clock uses SystemClock.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = SystemClock
	}
	return &Tracer{clock: clock}
}

// Spans returns the finished spans sorted by start order (span ID).
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.finished))
	copy(out, t.finished)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteJSON exports the finished spans as a single JSON document:
// {"spans": [...]}.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string][]SpanRecord{"spans": t.Spans()})
}

// Span is one in-flight timed operation. A nil *Span (telemetry disabled)
// is valid: all methods are no-ops.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// StartSpan begins a span under the context's tracer, parented to the
// context's current span. It returns a derived context carrying the new
// span, so nested StartSpan calls build a tree. Without a tracer in ctx it
// returns (ctx, nil) and allocates nothing.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanKey).(*Span); ps != nil {
		parent = ps.id
	}
	sp := &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  t.clock.Now(),
	}
	for _, a := range attrs {
		sp.SetAttr(a.Key, a.Value)
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SetAttr sets an attribute on the span. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span, recording it into its tracer and folding its
// duration into the process-wide span summary (exposed via Prometheus).
// End is idempotent and a no-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	d := s.tracer.clock.Now().Sub(s.start)
	rec := SpanRecord{
		ID:              s.id,
		Parent:          s.parent,
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: d.Seconds(),
		Attrs:           attrs,
	}
	s.tracer.mu.Lock()
	s.tracer.finished = append(s.tracer.finished, rec)
	s.tracer.mu.Unlock()
	observeSpan(s.name, d)
}
