// Package telemetry is the engine's observability layer: hierarchical,
// context-propagated spans with monotonic timings, reservoir-sampled
// per-subject stage traces, and process-wide engine metrics exposed in
// Prometheus text format.
//
// The package is dependency-free (stdlib only) and designed so that the
// instrumented hot paths pay nothing when telemetry is off:
//
//   - Spans exist only when a *Tracer has been attached to the context with
//     WithTracer. Without one, StartSpan returns a nil *Span whose methods
//     are nil-safe no-ops, and no allocation happens.
//   - Subject traces are captured only when a *Recorder has been attached
//     with WithRecorder; callers guard the capture with a nil check.
//   - Engine metrics are plain atomics updated once per run (not per
//     subject), so they stay on regardless.
//
// Crucially, nothing in this package touches the simulation's random
// streams: a traced run returns bit-identical results to an untraced one.
package telemetry

import (
	"context"
	"time"
)

// Clock abstracts time for span measurement so tests can inject a fake.
// time.Time values from the system clock carry Go's monotonic reading, so
// span durations are immune to wall-clock adjustments.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock is the default Clock, backed by time.Now.
var SystemClock Clock = systemClock{}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	recorderKey
)

// WithTracer returns a context that carries the tracer. Spans started under
// the returned context (and its descendants) are collected by it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFromContext returns the tracer attached with WithTracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRecorder returns a context that carries the subject-trace recorder.
// The sim engine offers every completed subject to it.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFromContext returns the recorder attached with WithRecorder, or
// nil when subject tracing is off.
func RecorderFromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}
