package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock that advances a fixed step per Now().
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func TestStartSpanWithoutTracerIsNil(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "run")
	if sp != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	if ctx != context.Background() {
		t.Error("StartSpan without a tracer must return the context unchanged")
	}
	// All nil-span methods are no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
}

func TestSpanTreeAndClock(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0), step: time.Second}
	tr := NewTracer(clock)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "experiment", String("id", "E1"))
	cctx, child := StartSpan(ctx, "run")
	_, grand := StartSpan(cctx, "worker-batch")
	grand.End()
	child.End()
	root.SetAttr("note", "done")
	root.End()
	root.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	exp, run, worker := byName["experiment"], byName["run"], byName["worker-batch"]
	if exp.Parent != 0 {
		t.Errorf("experiment parent = %d, want 0 (root)", exp.Parent)
	}
	if run.Parent != exp.ID {
		t.Errorf("run parent = %d, want %d", run.Parent, exp.ID)
	}
	if worker.Parent != run.ID {
		t.Errorf("worker parent = %d, want %d", worker.Parent, run.ID)
	}
	if exp.Attrs["id"] != "E1" || exp.Attrs["note"] != "done" {
		t.Errorf("experiment attrs = %v", exp.Attrs)
	}
	// The fake clock steps once per Now(): starts at t0,t1,t2 and ends at
	// t3,t4,t5, so each span has a positive, exact duration.
	for _, s := range spans {
		if s.DurationSeconds <= 0 {
			t.Errorf("span %s duration = %v, want > 0", s.Name, s.DurationSeconds)
		}
	}
	if worker.DurationSeconds != 1 {
		t.Errorf("worker-batch duration = %v, want exactly 1s from the fake clock", worker.DurationSeconds)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "run", String("n", "100"))
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span export is not valid JSON: %v", err)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "run" || doc.Spans[0].Attrs["n"] != "100" {
		t.Errorf("unexpected span export: %+v", doc.Spans)
	}
}

func makeTrace(seed int64, subject int) SubjectTrace {
	return SubjectTrace{
		Subject:     subject,
		Seed:        seed,
		Heeded:      subject%2 == 0,
		FailedStage: "comprehension",
		Checks: []StageCheck{
			{Stage: "attention-switch", P: 0.9, Passed: true},
			{Stage: "comprehension", P: 0.4, Passed: false, Note: "inaccurate mental model"},
		},
	}
}

func TestRecorderDeterministicAcrossOfferOrder(t *testing.T) {
	const n, k = 500, 16
	sample := func(order []int) []SubjectTrace {
		rec := NewRecorder(k, 7)
		for _, i := range order {
			rec.Offer(makeTrace(42, i))
		}
		return rec.Traces()
	}
	inOrder := make([]int, n)
	for i := range inOrder {
		inOrder[i] = i
	}
	shuffled := append([]int(nil), inOrder...)
	rand.New(rand.NewSource(1)).Shuffle(n, func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a, b := sample(inOrder), sample(shuffled)
	if len(a) != k || len(b) != k {
		t.Fatalf("reservoir sizes %d, %d; want %d", len(a), len(b), k)
	}
	for i := range a {
		if a[i].Subject != b[i].Subject {
			t.Fatalf("sampled set depends on offer order: %v vs %v", a[i].Subject, b[i].Subject)
		}
	}
}

func TestRecorderSeedChangesSample(t *testing.T) {
	const n, k = 500, 16
	sample := func(recSeed int64) map[int]bool {
		rec := NewRecorder(k, recSeed)
		for i := 0; i < n; i++ {
			rec.Offer(makeTrace(1, i))
		}
		out := map[int]bool{}
		for _, tr := range rec.Traces() {
			out[tr.Subject] = true
		}
		return out
	}
	a, b := sample(1), sample(2)
	same := 0
	for s := range a {
		if b[s] {
			same++
		}
	}
	if same == k {
		t.Error("different recorder seeds sampled the identical subject set")
	}
}

func TestRecorderUnderCapacityKeepsAll(t *testing.T) {
	rec := NewRecorder(100, 3)
	for i := 0; i < 10; i++ {
		rec.Offer(makeTrace(5, i))
	}
	if got := len(rec.Traces()); got != 10 {
		t.Errorf("kept %d traces, want all 10 (under capacity)", got)
	}
	if rec.Offered() != 10 {
		t.Errorf("Offered() = %d, want 10", rec.Offered())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var rec *Recorder
	rec.Offer(makeTrace(1, 1))
	if rec.Traces() != nil || rec.Cap() != 0 || rec.Offered() != 0 {
		t.Error("nil recorder must be inert")
	}
}

func TestWriteJSONLOneObjectPerLine(t *testing.T) {
	rec := NewRecorder(8, 11)
	for i := 0; i < 20; i++ {
		rec.Offer(makeTrace(9, i))
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var tr SubjectTrace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if len(tr.Checks) != 2 || tr.Checks[1].Stage != "comprehension" {
			t.Errorf("line %d lost stage checks: %+v", lines, tr)
		}
	}
	if lines != 8 {
		t.Errorf("JSONL has %d lines, want 8", lines)
	}
}

func TestWriteMetricsSeries(t *testing.T) {
	RecordRun(123, 4, 50*time.Millisecond, map[string]int{"comprehension": 7, "motivation": 2})
	// An ended span must show up in the summary.
	tr := NewTracer(nil)
	_, sp := StartSpan(WithTracer(context.Background(), tr), "unit-test-span")
	sp.End()

	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE hitl_sim_subjects_total counter",
		"hitl_sim_subjects_total ",
		"# TYPE hitl_sim_runs_total counter",
		`hitl_sim_stage_failures_total{stage="comprehension"}`,
		`hitl_sim_stage_failures_total{stage="motivation"}`,
		"# TYPE hitl_sim_run_duration_seconds histogram",
		`hitl_sim_run_duration_seconds_bucket{le="+Inf"}`,
		"hitl_sim_run_duration_seconds_sum",
		"hitl_sim_run_duration_seconds_count",
		"# TYPE hitl_sim_run_subjects_per_second histogram",
		"# TYPE hitl_sim_active_workers gauge",
		"hitl_sim_last_run_workers 4",
		"# TYPE hitl_sim_subject_traces_total counter",
		"# TYPE hitl_span_duration_seconds summary",
		`hitl_span_duration_seconds_count{span="unit-test-span"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("engine metrics missing %q", want)
		}
	}
	// Counters are process-global and monotonic.
	var before, after int64
	fmt.Sscanf(find(text, "hitl_sim_subjects_total "), "hitl_sim_subjects_total %d", &before)
	RecordRun(10, 1, time.Millisecond, nil)
	buf.Reset()
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Sscanf(find(buf.String(), "hitl_sim_subjects_total "), "hitl_sim_subjects_total %d", &after)
	if after != before+10 {
		t.Errorf("subjects counter went %d -> %d, want +10", before, after)
	}
}

// find returns the first line of text starting with prefix.
func find(text, prefix string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

func TestConcurrentOffersAndWorkers(t *testing.T) {
	// Exercised further under -race: concurrent offers, worker gauges, and
	// span ends must be data-race free.
	rec := NewRecorder(32, 1)
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			WorkerStarted()
			defer WorkerDone()
			_, sp := StartSpan(ctx, "worker-batch")
			for i := 0; i < 200; i++ {
				rec.Offer(makeTrace(int64(w), i))
			}
			sp.End()
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := len(rec.Traces()); got != 32 {
		t.Errorf("reservoir kept %d, want 32", got)
	}
	if got := len(tr.Spans()); got != 8 {
		t.Errorf("tracer has %d spans, want 8", got)
	}
}
