package telemetry

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// StageCheck is one stage evaluation inside a subject trace: the pipeline
// stage, the probability the subject was sampled against, whether they
// passed, and any routing note ("heuristic decision: ...", "gems: slip").
type StageCheck struct {
	Stage  string  `json:"stage"`
	P      float64 `json:"p"`
	Passed bool    `json:"passed"`
	Note   string  `json:"note,omitempty"`
}

// SubjectTrace is the full stage-by-stage trajectory of one simulated
// subject: why did subject 4711 fail at comprehension? One trace per line
// in the JSONL export.
type SubjectTrace struct {
	// Subject is the subject index within its run; Seed is the run's master
	// seed, so (Seed, Subject) pins down the exact random stream and the
	// trace can be replayed.
	Subject int   `json:"subject"`
	Seed    int64 `json:"seed"`
	// Heeded, FailedStage, ErrorClass, HeuristicPath, and Spoofed mirror
	// the subject's outcome.
	Heeded        bool   `json:"heeded"`
	FailedStage   string `json:"failed_stage,omitempty"`
	ErrorClass    string `json:"error_class,omitempty"`
	HeuristicPath bool   `json:"heuristic_path,omitempty"`
	Spoofed       bool   `json:"spoofed,omitempty"`
	// Checks is the ordered stage trajectory. Empty for scenarios that
	// aggregate multiple encounters into one outcome without forwarding a
	// pipeline trace.
	Checks []StageCheck `json:"checks,omitempty"`
}

// mix64 is a splitmix64-style finalizer used to derive sampling priorities.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sampledTrace pairs a trace with its sampling priority.
type sampledTrace struct {
	priority uint64
	trace    SubjectTrace
}

// traceHeap is a max-heap on priority, so the kept set is always the K
// offers with the smallest priorities.
type traceHeap []sampledTrace

func (h traceHeap) Len() int           { return len(h) }
func (h traceHeap) Less(i, j int) bool { return h[i].priority > h[j].priority }
func (h traceHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *traceHeap) Push(x any)        { *h = append(*h, x.(sampledTrace)) }
func (h *traceHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Recorder keeps a uniform sample of K subject traces out of however many
// are offered. Sampling is a bottom-K sketch: each offer gets a priority
// hashed from (recorder seed, run seed, subject index) and the K smallest
// priorities win. Because the priority depends only on the subject's
// identity — never on arrival order — the sampled set is deterministic
// regardless of worker count or goroutine scheduling, and offering traces
// never touches the simulation's random streams.
type Recorder struct {
	k    int
	seed int64

	mu      sync.Mutex
	kept    traceHeap
	offered int64
}

// NewRecorder creates a recorder sampling up to k traces. The seed salts
// the sampling hash so different recorders over the same run sample
// different subjects; k < 1 is treated as 1.
func NewRecorder(k int, seed int64) *Recorder {
	if k < 1 {
		k = 1
	}
	return &Recorder{k: k, seed: seed}
}

// Cap returns the reservoir capacity K.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.k
}

// Offered returns how many traces have been offered so far.
func (r *Recorder) Offered() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered
}

// priority derives the deterministic sampling priority for a subject.
func (r *Recorder) priority(runSeed int64, subject int) uint64 {
	return mix64(mix64(uint64(r.seed)^mix64(uint64(runSeed))) + uint64(int64(subject)))
}

// Offer submits one subject trace to the reservoir. Safe for concurrent
// use; a nil recorder ignores the offer.
func (r *Recorder) Offer(t SubjectTrace) {
	r.Consider(t.Seed, t.Subject, func() SubjectTrace { return t })
}

// Consider offers the subject identified by (runSeed, subject) and calls
// build to materialize its trace only if the subject currently wins a
// reservoir slot. A subject's priority is fixed and the admission threshold
// only tightens as offers accumulate, so a subject rejected now could never
// be admitted later and skipping build loses nothing. This keeps the
// per-subject cost of an enabled recorder to one hash plus a mutexed
// comparison for the vast majority of subjects that are not sampled. Safe
// for concurrent use; a nil recorder ignores the offer.
func (r *Recorder) Consider(runSeed int64, subject int, build func() SubjectTrace) {
	if r == nil {
		return
	}
	p := r.priority(runSeed, subject)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++
	switch {
	case len(r.kept) < r.k:
		heap.Push(&r.kept, sampledTrace{priority: p, trace: build()})
		engine.tracesKept.Add(1)
	case p < r.kept[0].priority:
		r.kept[0] = sampledTrace{priority: p, trace: build()}
		heap.Fix(&r.kept, 0)
	}
}

// Traces returns the sampled traces ordered by (seed, subject index).
func (r *Recorder) Traces() []SubjectTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SubjectTrace, len(r.kept))
	for i, st := range r.kept {
		out[i] = st.trace
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seed != out[j].Seed {
			return out[i].Seed < out[j].Seed
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

// WriteJSONL writes the sampled traces as JSON Lines: one compact JSON
// object per trace per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, t := range r.Traces() {
		raw, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("telemetry: encoding trace: %w", err)
		}
		raw = append(raw, '\n')
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}
