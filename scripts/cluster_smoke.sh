#!/usr/bin/env bash
# cluster_smoke.sh drives fault-tolerant distributed execution end to end
# against real hitl-serve processes: three workers plus a coordinator
# (pooled via -workers-file), a baseline single-node run, a sharded
# cluster run that must match it bit for bit, then a SIGKILL'd worker and
# a re-run that must fail over — still bit-identical — with the retries,
# failovers, and health flips visible in /v1/metrics, /v1/cluster/nodes,
# and the flight recorder. The merged result is also served back from the
# persistent store under the spec's canonical digest. Diagnostic
# artifacts (cluster responses, flight events) land in $STORE_DIR/smoke
# for CI to archive. Needs curl and jq.
#
# HITL_STORE_DIR overrides the coordinator's store location (CI points it
# at a workspace path and uploads it as an artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

STORE_DIR="${HITL_STORE_DIR:-$(mktemp -d)}"
SCRATCH="$(mktemp -d)"
BIN="$SCRATCH/hitl-serve"
SPEC=examples/scenarios/phishing-study.json
PIDS=()

cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
  echo "cluster-smoke: FAIL: $*" >&2
  for log in "$SCRATCH"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2 || true
  done
  exit 1
}

# start_node LOGNAME [extra flags...] -> sets ADDR and PID
start_node() {
  local log="$SCRATCH/$1.log"
  shift
  : >"$log"
  "$BIN" -addr 127.0.0.1:0 "$@" >>"$log" 2>&1 &
  PID=$!
  PIDS+=("$PID")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -1)
    [ -n "$ADDR" ] && curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "$1 did not become healthy"
}

go build -o "$BIN" ./cmd/hitl-serve
echo "== store dir: $STORE_DIR"

echo "== start 3 workers"
declare -A WORKER_PID
WORKERS=()
for i in 1 2 3; do
  start_node "worker$i"
  WORKERS+=("http://$ADDR")
  WORKER_PID["http://$ADDR"]=$PID
  echo "   worker$i at http://$ADDR (pid $PID)"
done

echo "== start coordinator over the pool (-workers-file)"
{
  echo "# cluster smoke pool"
  printf '%s\n' "${WORKERS[@]}"
} >"$SCRATCH/pool.txt"
# Background probing is off so the SIGKILL below is discovered by the
# dispatch path itself — guaranteeing the re-run records a retry and a
# failover rather than racing the prober to the dead worker. The probe
# loop has its own coverage in internal/cluster's tests.
start_node coordinator -workers-file "$SCRATCH/pool.txt" -probe-interval=-1s -store-dir "$STORE_DIR"
COORD="http://$ADDR"
echo "   coordinator at $COORD"

echo "== baseline: single-node run"
# The comparison key: scenario points and derived metrics, canonically
# ordered. The cluster runs below must reproduce these bytes exactly.
curl -fsS -X POST --data-binary @"$SPEC" "$COORD/v1/scenarios/run" |
  jq -S '{points: .points, metrics: .metrics}' >"$SCRATCH/baseline.json"

echo "== cluster run across 6 shards"
curl -fsS -X POST --data-binary @"$SPEC" "$COORD/v1/cluster/run?shards=6&report=1" >"$SCRATCH/cluster1.json"
jq -S '{points: .points, metrics: .metrics}' "$SCRATCH/cluster1.json" >"$SCRATCH/cluster1.cmp.json"
cmp -s "$SCRATCH/baseline.json" "$SCRATCH/cluster1.cmp.json" ||
  fail "healthy cluster run is not bit-identical to the single-node run"
[ "$(jq -r .cluster.shards "$SCRATCH/cluster1.json")" = 6 ] || fail "cluster run did not use 6 shards"
[ "$(jq -r '.cluster.partial // false' "$SCRATCH/cluster1.json")" = false ] || fail "healthy run was partial"
DIGEST=$(jq -r .report.spec_digest "$SCRATCH/cluster1.json")
echo "$DIGEST" | grep -Eq '^[0-9a-f]{64}$' || fail "bad spec digest: $DIGEST"

echo "== merged result persisted under digest $DIGEST"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$COORD/v1/jobs/$DIGEST/result")
[ "$CODE" = 200 ] || fail "stored cluster result: $CODE, want 200"

echo "== SIGKILL the busiest worker"
VICTIM=$(jq -r '.cluster.nodes | to_entries | max_by(.value) | .key' "$SCRATCH/cluster1.json")
echo "   victim: $VICTIM (served $(jq -r ".cluster.nodes[\"$VICTIM\"]" "$SCRATCH/cluster1.json") shards)"
kill -9 "${WORKER_PID[$VICTIM]}"

echo "== cluster run again: must fail over and still match"
curl -fsS -X POST --data-binary @"$SPEC" "$COORD/v1/cluster/run?shards=6" >"$SCRATCH/cluster2.json"
jq -S '{points: .points, metrics: .metrics}' "$SCRATCH/cluster2.json" >"$SCRATCH/cluster2.cmp.json"
cmp -s "$SCRATCH/baseline.json" "$SCRATCH/cluster2.cmp.json" ||
  fail "failed-over cluster run is not bit-identical to the single-node run"
FAILOVERS=$(jq -r .cluster.failovers "$SCRATCH/cluster2.json")
[ "$FAILOVERS" -ge 1 ] || fail "no failovers after killing $VICTIM: $(cat "$SCRATCH/cluster2.json")"
[ "$(jq -r '.cluster.partial // false' "$SCRATCH/cluster2.json")" = false ] || fail "failover run was partial"

echo "== coordinator marked the dead worker unhealthy"
curl -fsS "$COORD/v1/cluster/nodes" >"$SCRATCH/nodes.json"
[ "$(jq -r ".nodes[\"$VICTIM\"]" "$SCRATCH/nodes.json")" = unhealthy ] ||
  fail "dead worker not unhealthy: $(cat "$SCRATCH/nodes.json")"

echo "== cluster metrics"
METRICS=$(curl -fsS "$COORD/v1/metrics")
echo "$METRICS" | grep -q '^hitl_cluster_runs_total [2-9]' || fail "runs counter did not advance"
echo "$METRICS" | grep -q '^hitl_cluster_shard_failovers_total [1-9]' || fail "failover counter did not advance"
echo "$METRICS" | grep -q '^hitl_cluster_shard_retries_total [1-9]' || fail "retry counter did not advance"
echo "$METRICS" | grep -q '^hitl_cluster_node_unhealthy [1-9]' || fail "unhealthy gauge still zero"
echo "$METRICS" | grep -E '^hitl_cluster_' | sed 's/^/   /'

echo "== flight recorder shows the shard lifecycle"
curl -fsS "$COORD/v1/debug/events?kind=shard-dispatch,shard-retry,shard-failover,node-unhealthy" \
  >"$SCRATCH/events.json"
for kind in shard-dispatch shard-retry shard-failover node-unhealthy; do
  jq -e ".events | map(.kind) | index(\"$kind\")" "$SCRATCH/events.json" >/dev/null ||
    fail "flight recorder missing $kind events"
done

# Park the diagnostic artifacts next to the store so CI's upload carries
# them.
mkdir -p "$STORE_DIR/smoke"
cp "$SCRATCH/cluster1.json" "$STORE_DIR/smoke/cluster-run-healthy.json"
cp "$SCRATCH/cluster2.json" "$STORE_DIR/smoke/cluster-run-failover.json"
cp "$SCRATCH/events.json" "$STORE_DIR/smoke/flight-events.json"
cp "$SCRATCH/nodes.json" "$STORE_DIR/smoke/cluster-nodes.json"

echo "cluster-smoke: OK (6 shards, $FAILOVERS failover(s) past a SIGKILL'd worker, bit-identical merges)"
