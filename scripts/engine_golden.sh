#!/usr/bin/env bash
# engine_golden.sh proves the compiled engine's bit-identity contract over
# the whole example corpus from the outside: every spec in
# examples/scenarios/ runs through the hitl-sim CLI twice — once with
# -engine interpreted, once with -engine compiled — and the rendered
# stdout (tables, labels, every formatted metric digit) must be
# byte-identical. Specs the compiler refuses fall back to the interpreter
# under -engine compiled, so the diff holds trivially for them too; the
# per-spec engine paths (from stderr) are recorded alongside the outputs.
#
# Outputs land under ENGINE_GOLDEN_DIR (default: a temp dir) as
# <spec>.interpreted.txt / <spec>.compiled.txt plus engine_paths.txt, so
# CI can archive the comparison as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${ENGINE_GOLDEN_DIR:-$(mktemp -d)}"
mkdir -p "$OUT_DIR"
BIN="$OUT_DIR/hitl-sim-golden"

go build -o "$BIN" ./cmd/hitl-sim

fail=0
: >"$OUT_DIR/engine_paths.txt"
for spec in examples/scenarios/*.json; do
  name="$(basename "$spec" .json)"
  echo "== $spec"
  "$BIN" -spec "$spec" -engine interpreted \
    >"$OUT_DIR/$name.interpreted.txt" 2>"$OUT_DIR/$name.interpreted.err"
  "$BIN" -spec "$spec" -engine compiled \
    >"$OUT_DIR/$name.compiled.txt" 2>"$OUT_DIR/$name.compiled.err"
  {
    printf '%s interpreted: ' "$name"; grep 'engine path' "$OUT_DIR/$name.interpreted.err" || true
    printf '%s compiled:    ' "$name"; grep 'engine path' "$OUT_DIR/$name.compiled.err" || true
  } >>"$OUT_DIR/engine_paths.txt"
  if ! diff -u "$OUT_DIR/$name.interpreted.txt" "$OUT_DIR/$name.compiled.txt"; then
    echo "engine-golden: MISMATCH: $spec renders differently interpreted vs compiled" >&2
    fail=1
  fi
done

rm -f "$BIN"
if [ "$fail" -ne 0 ]; then
  echo "engine-golden: FAIL (outputs in $OUT_DIR)" >&2
  exit 1
fi
echo "engine-golden: OK — all example specs byte-identical across engines (outputs in $OUT_DIR)"
