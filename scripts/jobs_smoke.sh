#!/usr/bin/env bash
# jobs_smoke.sh drives the async job API end to end against a real
# hitl-serve process: submit a scenario spec as a job, poll it to
# completion, read the JSONL stream, then RESTART the server over the same
# store directory and re-fetch the result — first conditionally
# (If-None-Match answers 304 with the ETag that survived the restart),
# then plain (200 with the stored body) — and finally re-submit the same
# spec and check it coalesces onto the stored result instead of
# recomputing. Along the way it fetches the job's persisted run report
# (canonical, ETag-stable across the restart) and the process flight
# recorder (/v1/debug/events), parking both under $STORE_DIR/smoke for CI
# to archive. Needs curl and jq.
#
# HITL_STORE_DIR overrides the store location (CI points it at a
# workspace path and uploads it as an artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

STORE_DIR="${HITL_STORE_DIR:-$(mktemp -d)}"
SCRATCH="$(mktemp -d)"
BIN="$SCRATCH/hitl-serve"
LOG="$SCRATCH/serve.log"
SPEC=examples/scenarios/phishing-campaign.json
SERVER_PID=""

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
  echo "jobs-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$LOG" >&2 || true
  exit 1
}

start_server() {
  : >"$LOG"
  "$BIN" -addr 127.0.0.1:0 -store-dir "$STORE_DIR" >>"$LOG" 2>&1 &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG" | head -1)
    [ -n "$ADDR" ] && curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "server did not become healthy"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" || true
  SERVER_PID=""
}

go build -o "$BIN" ./cmd/hitl-serve
echo "== store dir: $STORE_DIR"
start_server

echo "== submit $SPEC"
SUBMIT=$(curl -fsS -X POST --data-binary @"$SPEC" "http://$ADDR/v1/jobs")
ID=$(echo "$SUBMIT" | jq -r .id)
echo "$ID" | grep -Eq '^[0-9a-f]{64}$' || fail "bad job id: $SUBMIT"
[ "$(echo "$SUBMIT" | jq -r .created)" = "true" ] || fail "first submit did not create: $SUBMIT"

echo "== poll job $ID"
STATE=""
for _ in $(seq 1 300); do
  STATE=$(curl -fsS "http://$ADDR/v1/jobs/$ID" | jq -r .state)
  [ "$STATE" = complete ] && break
  [ "$STATE" = failed ] && fail "job failed"
  sleep 0.1
done
[ "$STATE" = complete ] || fail "job never completed (state: $STATE)"

echo "== stream"
STREAM=$(curl -fsS "http://$ADDR/v1/jobs/$ID/stream")
LAST_TYPE=$(echo "$STREAM" | tail -1 | jq -r .type)
[ "$LAST_TYPE" = done ] || fail "stream did not end in done: $LAST_TYPE"
POINTS=$(echo "$STREAM" | jq -rs '[.[] | select(.type == "point")] | length')
[ "$POINTS" -ge 1 ] || fail "stream carried no points"

# Go canonicalizes the header name to "Etag"; match case-insensitively.
ETAG=$(curl -fsS -D - -o "$SCRATCH/result1.json" "http://$ADDR/v1/jobs/$ID/result" |
  tr -d '\r' | awk 'tolower($1) == "etag:" {print $2}')
[ -n "$ETAG" ] || fail "result carried no ETag"

echo "== run report"
RETAG=$(curl -fsS -D - -o "$SCRATCH/report1.json" "http://$ADDR/v1/jobs/$ID/report" |
  tr -d '\r' | awk 'tolower($1) == "etag:" {print $2}')
[ -n "$RETAG" ] || fail "report carried no ETag"
[ "$(jq -r .job_id "$SCRATCH/report1.json")" = "$ID" ] || fail "report names wrong job: $(cat "$SCRATCH/report1.json")"
[ "$(jq -r .engine_runs "$SCRATCH/report1.json")" -ge 1 ] || fail "report recorded no engine runs"
# Canonical reports zero the scheduling-dependent fields.
[ "$(jq -r '.workers // 0' "$SCRATCH/report1.json")" = 0 ] || fail "persisted report not canonical (workers set)"

echo "== flight recorder events"
curl -fsS "http://$ADDR/v1/debug/events" >"$SCRATCH/events.json"
[ "$(jq -r .total "$SCRATCH/events.json")" -ge 1 ] || fail "flight recorder recorded nothing"
jq -e '.events | map(.kind) | index("job-complete")' "$SCRATCH/events.json" >/dev/null ||
  fail "flight recorder missing the job-complete event: $(cat "$SCRATCH/events.json")"
KINDFILTER=$(curl -fsS "http://$ADDR/v1/debug/events?kind=job-complete" | jq -r '[.events[].kind] | unique | join(",")')
[ "$KINDFILTER" = "job-complete" ] || fail "kind filter leaked other kinds: $KINDFILTER"

echo "== restart server over the same store"
stop_server
start_server

echo "== conditional re-fetch with If-None-Match: $ETAG"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $ETAG" \
  "http://$ADDR/v1/jobs/$ID/result")
[ "$CODE" = 304 ] || fail "If-None-Match after restart: $CODE, want 304"

CODE=$(curl -s -o "$SCRATCH/result2.json" -w '%{http_code}' "http://$ADDR/v1/jobs/$ID/result")
[ "$CODE" = 200 ] || fail "plain result after restart: $CODE, want 200"
cmp -s "$SCRATCH/result1.json" "$SCRATCH/result2.json" || fail "result bytes changed across restart"

echo "== report survives the restart (ETag-stable)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $RETAG" \
  "http://$ADDR/v1/jobs/$ID/report")
[ "$CODE" = 304 ] || fail "report If-None-Match after restart: $CODE, want 304"
CODE=$(curl -s -o "$SCRATCH/report2.json" -w '%{http_code}' "http://$ADDR/v1/jobs/$ID/report")
[ "$CODE" = 200 ] || fail "plain report after restart: $CODE, want 200"
cmp -s "$SCRATCH/report1.json" "$SCRATCH/report2.json" || fail "report bytes changed across restart"

echo "== re-submit coalesces onto the stored result"
RESUBMIT=$(curl -fsS -X POST --data-binary @"$SPEC" "http://$ADDR/v1/jobs")
[ "$(echo "$RESUBMIT" | jq -r .created)" = "false" ] || fail "resubmit recomputed: $RESUBMIT"
[ "$(echo "$RESUBMIT" | jq -r .state)" = "complete" ] || fail "resubmit not complete: $RESUBMIT"

echo "== job/store metrics"
METRICS=$(curl -fsS "http://$ADDR/v1/metrics")
echo "$METRICS" | grep -q '^hitl_jobs_submitted_total 0$' || fail "restarted server recomputed a job"
echo "$METRICS" | grep -q '^hitl_store_hits_total [1-9]' || fail "store served no hits"
echo "$METRICS" | grep -E '^hitl_(jobs|store)_' | sed 's/^/   /'

# Park the diagnostic artifacts next to the store so CI's store-dir upload
# carries them (they also upload as an explicit artifact).
mkdir -p "$STORE_DIR/smoke"
cp "$SCRATCH/report1.json" "$STORE_DIR/smoke/job-report.json"
cp "$SCRATCH/events.json" "$STORE_DIR/smoke/flight-events.json"

stop_server
echo "jobs-smoke: OK (job $ID survived a restart; store at $STORE_DIR)"
